"""Content units — the building blocks of WebML pages.

The paper's Acer-Euro deployment uses exactly the built-in taxonomy
implemented here ("the basic WebML units: data, index, multidata,
multi-choice, scroller, entry", §8), plus the hierarchical index of
Figure 1.  Every unit declares:

- the ER ``entity`` it publishes (except the entry unit, which is pure
  data entry),
- an optional :class:`~repro.webml.selectors.Selector`,
- its *input slots* (parameters fed by links) and *output slots*
  (values other links may transport onward).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WebMLError
from repro.webml.selectors import Selector


@dataclass
class ContentUnit:
    """Base content unit.

    ``display_attributes`` lists the entity attributes rendered by the
    unit; empty means "all attributes" (resolved at generation time).
    ``cacheable``/``cache_policy`` implement §6: a unit tagged as cached
    has its unit bean stored in the business-tier cache and invalidated
    when operations touch the entities/relationships it depends on.
    """

    id: str
    name: str
    entity: str | None = None
    selector: Selector | None = None
    display_attributes: list[str] = field(default_factory=list)
    cacheable: bool = False
    cache_policy: str = "model-driven"  # or "ttl:<seconds>"
    kind: str = "abstract"
    #: additional dataflow slots, used by §7 plug-in units to declare
    #: the inputs/outputs their service consumes and produces
    extra_inputs: list[str] = field(default_factory=list)
    extra_outputs: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise WebMLError("unit name must be non-empty")

    # -- dataflow contract --------------------------------------------------

    @property
    def input_slots(self) -> list[str]:
        """Parameters this unit consumes (from its selector by default)."""
        slots = list(self.selector.parameters) if self.selector else []
        return slots + [s for s in self.extra_inputs if s not in slots]

    @property
    def output_slots(self) -> list[str]:
        """Values this unit can transport over outgoing links."""
        return ["oid"] + [s for s in self.extra_outputs if s != "oid"]

    @property
    def depends_on_roles(self) -> list[str]:
        """Relationship roles the unit's content depends on (for cache
        invalidation and validation)."""
        roles = []
        if self.selector:
            from repro.webml.selectors import RelationshipCondition

            roles = [
                c.role
                for c in self.selector.conditions
                if isinstance(c, RelationshipCondition)
            ]
        return roles


@dataclass
class DataUnit(ContentUnit):
    """Publishes the attributes of a single object (Figure 1's
    "Volume data")."""

    kind: str = "data"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.entity is None:
            raise WebMLError(f"data unit {self.name!r} needs an entity")
        if self.selector is None:
            # The implicit WebML behaviour: select by transported oid.
            self.selector = Selector.by_key()

    @property
    def output_slots(self) -> list[str]:
        return ["oid"] + list(self.display_attributes)


@dataclass
class IndexUnit(ContentUnit):
    """Publishes a list of objects; the user picks one (its oid becomes
    the output carried by the outgoing normal link)."""

    order_by: list[tuple[str, bool]] = field(default_factory=list)  # (attr, desc)
    kind: str = "index"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.entity is None:
            raise WebMLError(f"index unit {self.name!r} needs an entity")


@dataclass
class MultidataUnit(ContentUnit):
    """Publishes the full attribute set of several objects at once."""

    order_by: list[tuple[str, bool]] = field(default_factory=list)
    kind: str = "multidata"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.entity is None:
            raise WebMLError(f"multidata unit {self.name!r} needs an entity")


@dataclass
class MultichoiceIndexUnit(IndexUnit):
    """An index with checkboxes; outputs the *set* of chosen oids."""

    kind: str = "multichoice"

    @property
    def output_slots(self) -> list[str]:
        return ["oids"]


@dataclass
class ScrollerUnit(ContentUnit):
    """Scrolls over the instances of an entity in blocks, emitting
    first/previous/next/last navigation (paper §8 lists it among the
    basic units)."""

    block_size: int = 10
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    kind: str = "scroller"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.entity is None:
            raise WebMLError(f"scroller unit {self.name!r} needs an entity")
        if self.block_size <= 0:
            raise WebMLError("scroller block size must be positive")

    @property
    def input_slots(self) -> list[str]:
        return super().input_slots + ["block"]

    @property
    def output_slots(self) -> list[str]:
        return ["block", "block_count"]


@dataclass
class EntryField:
    """One form field of an entry unit."""

    name: str
    field_type: str = "text"  # text | password | hidden | textarea
    required: bool = False
    label: str | None = None

    def __post_init__(self) -> None:
        if self.field_type not in ("text", "password", "hidden", "textarea"):
            raise WebMLError(f"unknown entry field type {self.field_type!r}")


@dataclass
class EntryUnit(ContentUnit):
    """A data-entry form (Figure 1's "Enter keyword"); outputs one value
    per field."""

    fields: list[EntryField] = field(default_factory=list)
    kind: str = "entry"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.entity is not None:
            raise WebMLError("entry units are not bound to an entity")
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise WebMLError(f"entry unit {self.name!r} has duplicate fields")

    @property
    def input_slots(self) -> list[str]:
        return []

    @property
    def output_slots(self) -> list[str]:
        return [f.name for f in self.fields]


@dataclass
class HierarchyLevel:
    """One level of a hierarchical index: the entity shown and the role
    traversed from the parent level's entity (``role`` is None for the
    root level, whose population comes from the unit selector)."""

    entity: str
    role: str | None = None
    display_attributes: list[str] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)


@dataclass
class HierarchicalIndexUnit(ContentUnit):
    """Figure 1's "Issues&Papers": a nested index built by traversing
    relationship roles level by level (``Issue[VolumeToIssue]`` NEST
    ``Paper[IssueToPaper]``)."""

    levels: list[HierarchyLevel] = field(default_factory=list)
    kind: str = "hierarchical"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.levels:
            raise WebMLError(
                f"hierarchical index {self.name!r} needs at least one level"
            )
        self.entity = self.levels[0].entity
        if self.levels[0].role is not None and self.selector is None:
            # A rooted role means the unit hangs off a parent object.
            self.selector = Selector.over_role(self.levels[0].role)

    @property
    def depends_on_roles(self) -> list[str]:
        roles = super().depends_on_roles
        for level in self.levels:
            if level.role and level.role not in roles:
                roles.append(level.role)
        return roles
