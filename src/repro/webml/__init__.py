"""The WebML hypertext model.

WebML (paper §1) specifies the front-end of a data-intensive Web
application: site views targeted at user groups, areas, pages, content
units bound to ER entities/relationships, operation units, and the links
that carry parameters and navigation between them.

- :mod:`repro.webml.model` — SiteView/Area/Page containers and the
  :class:`WebMLModel` facade with its fluent builder API,
- :mod:`repro.webml.units` — the content unit taxonomy (data, index,
  multidata, multichoice, scroller, entry, hierarchical index),
- :mod:`repro.webml.operations` — operation units (create, delete,
  modify, connect, disconnect, login, logout) with OK/KO outcomes,
- :mod:`repro.webml.links` — link kinds and parameter bindings,
- :mod:`repro.webml.selectors` — unit selectors (attribute, key and
  relationship-role conditions),
- :mod:`repro.webml.validation` — whole-model structural validation,
- :mod:`repro.webml.loader` — XML persistence.
"""

from repro.webml.links import Link, LinkKind, LinkParameter
from repro.webml.loader import webml_from_xml, webml_to_xml
from repro.webml.model import Area, Page, SiteView, WebMLModel
from repro.webml.operations import (
    ConnectUnit,
    CreateUnit,
    DeleteUnit,
    DisconnectUnit,
    LoginUnit,
    LogoutUnit,
    ModifyUnit,
    OperationUnit,
)
from repro.webml.selectors import (
    AttributeCondition,
    KeyCondition,
    RelationshipCondition,
    Selector,
)
from repro.webml.units import (
    ContentUnit,
    DataUnit,
    EntryField,
    EntryUnit,
    HierarchicalIndexUnit,
    HierarchyLevel,
    IndexUnit,
    MultichoiceIndexUnit,
    MultidataUnit,
    ScrollerUnit,
)
from repro.webml.validation import validate_model

__all__ = [
    "WebMLModel",
    "SiteView",
    "Area",
    "Page",
    "ContentUnit",
    "DataUnit",
    "IndexUnit",
    "MultidataUnit",
    "MultichoiceIndexUnit",
    "ScrollerUnit",
    "EntryUnit",
    "EntryField",
    "HierarchicalIndexUnit",
    "HierarchyLevel",
    "OperationUnit",
    "CreateUnit",
    "DeleteUnit",
    "ModifyUnit",
    "ConnectUnit",
    "DisconnectUnit",
    "LoginUnit",
    "LogoutUnit",
    "Link",
    "LinkKind",
    "LinkParameter",
    "Selector",
    "AttributeCondition",
    "KeyCondition",
    "RelationshipCondition",
    "validate_model",
    "webml_to_xml",
    "webml_from_xml",
]
