"""XML node tree.

Two concrete node kinds — :class:`Element` and :class:`Text` — are enough
for descriptors and page templates.  Elements own an ordered attribute
mapping and an ordered list of children; every node knows its parent so
the rule engine can replace nodes in place.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import XmlError


class Node:
    """Common base of tree nodes; tracks the owning parent element."""

    def __init__(self) -> None:
        self.parent: Element | None = None

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op if already a root)."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node


class Text(Node):
    """A run of character data."""

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def copy(self) -> "Text":
        return Text(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Text({self.value!r})"


class Element(Node):
    """An XML element with ordered attributes and children.

    ``tag`` may carry a namespace-style prefix (``webml:dataUnit``); the
    prefix is kept verbatim — this library does not implement namespace
    resolution because descriptors and templates use fixed prefixes.
    """

    def __init__(self, tag: str, attrs: dict[str, str] | None = None):
        super().__init__()
        if not tag:
            raise XmlError("element tag must be non-empty")
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs or {})
        self.children: list[Node] = []

    # -- construction -----------------------------------------------------

    def append(self, node: Node) -> Node:
        """Attach ``node`` as the last child and return it."""
        node.detach()
        node.parent = self
        self.children.append(node)
        return node

    def insert(self, index: int, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.insert(index, node)
        return node

    def add(self, tag: str, attrs: dict[str, str] | None = None,
            text: str | None = None) -> "Element":
        """Convenience: create and append a child element.

        An empty ``text`` adds no child: ``<x></x>`` reparses as ``<x/>``,
        so emitting a bare element keeps serialization round-trip stable.

        >>> root = Element("page")
        >>> root.add("unit", {"id": "u1"}, text="hello").tag
        'unit'
        """
        child = Element(tag, attrs)
        if text:
            child.append(Text(text))
        self.append(child)
        return child

    def add_text(self, value: str) -> Text:
        text = Text(value)
        self.append(text)
        return text

    def replace_with(self, replacement: Node) -> None:
        """Swap this element for ``replacement`` in the parent's child list."""
        if self.parent is None:
            raise XmlError("cannot replace the root node in place")
        parent = self.parent
        index = parent.children.index(self)
        self.detach()
        replacement.detach()
        replacement.parent = parent
        parent.children.insert(index, replacement)

    def copy(self) -> "Element":
        """Deep copy, detached from any parent."""
        clone = Element(self.tag, dict(self.attrs))
        for child in self.children:
            clone.append(child.copy())  # type: ignore[attr-defined]
        return clone

    # -- navigation -------------------------------------------------------

    def element_children(self) -> list["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over this element and descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find(self, tag: str) -> "Element | None":
        """First direct child element with the given tag, or None."""
        for child in self.element_children():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All direct child elements with the given tag."""
        return [c for c in self.element_children() if c.tag == tag]

    def descendants(self, tag: str) -> list["Element"]:
        """All descendant elements (not self) with the given tag, pre-order."""
        return [e for e in self.iter() if e is not self and e.tag == tag]

    def required(self, tag: str) -> "Element":
        """Like :meth:`find` but raises :class:`XmlError` when missing."""
        child = self.find(tag)
        if child is None:
            raise XmlError(f"<{self.tag}> is missing required child <{tag}>")
        return child

    # -- content ----------------------------------------------------------

    def text(self) -> str:
        """Concatenated character data of this element and its descendants."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            elif isinstance(child, Element):
                parts.append(child.text())
        return "".join(parts)

    def get(self, name: str, default: str | None = None) -> str | None:
        return self.attrs.get(name, default)

    def require_attr(self, name: str) -> str:
        try:
            return self.attrs[name]
        except KeyError:
            raise XmlError(f"<{self.tag}> is missing required attribute {name!r}") from None

    def set(self, name: str, value: str) -> "Element":
        self.attrs[name] = value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Element({self.tag!r}, attrs={self.attrs!r}, children={len(self.children)})"
