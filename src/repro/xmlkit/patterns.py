"""Node-selection patterns for the presentation rule engine.

XSLT rules in the paper "match the outermost part of the skeleton's
layout" (page rules) or "match a class of units" (unit rules).  We model
that with a small pattern language over element trees:

- ``tag``                 — any element with that tag,
- ``*``                   — any element,
- ``a/b``                 — ``b`` whose direct parent matches ``a``,
- ``a//b``                — ``b`` with an ancestor matching ``a``,
- ``tag[@name]``          — requires attribute ``name`` to be present,
- ``tag[@name='value']``  — requires attribute equality,
- ``/tag``                — anchors the (final) match at the tree root.

Patterns match *bottom-up* like XSLT match patterns: the last step is
tested against the candidate node, earlier steps against its ancestry.
Specificity (for conflict resolution among rules) counts steps and
predicates, mirroring XSLT's default-priority spirit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import RuleError
from repro.xmlkit.node import Element

_PREDICATE = re.compile(r"\[@([A-Za-z_:][\w:.-]*)\s*(?:=\s*'([^']*)')?\]")
_STEP = re.compile(r"^([A-Za-z_:*][\w:.*-]*)")


@dataclass(frozen=True)
class _Step:
    tag: str  # '*' means any
    predicates: tuple[tuple[str, str | None], ...] = ()

    def matches(self, element: Element) -> bool:
        if self.tag != "*" and element.tag != self.tag:
            return False
        for name, value in self.predicates:
            if name not in element.attrs:
                return False
            if value is not None and element.attrs[name] != value:
                return False
        return True


@dataclass(frozen=True)
class Pattern:
    """A compiled match pattern; use :func:`compile_pattern` to build one."""

    source: str
    steps: tuple[_Step, ...]
    # separators[i] is the axis between steps[i] and steps[i+1]:
    # '/' = parent, '//' = ancestor.
    separators: tuple[str, ...] = ()
    rooted: bool = False

    def matches(self, element: Element) -> bool:
        """True when ``element`` satisfies the final step and its ancestry
        satisfies the earlier steps along the declared axes."""
        return self._match_from(element, len(self.steps) - 1)

    def _match_from(self, element: Element | None, step_index: int) -> bool:
        if element is None or not self.steps[step_index].matches(element):
            return False
        if step_index == 0:
            return not self.rooted or element.parent is None
        axis = self.separators[step_index - 1]
        if axis == "/":
            return self._match_from(element.parent, step_index - 1)
        ancestor = element.parent
        while ancestor is not None:
            if self._match_from(ancestor, step_index - 1):
                return True
            ancestor = ancestor.parent
        return False

    @property
    def specificity(self) -> int:
        """Higher wins when several rules match the same node."""
        score = 0
        for step in self.steps:
            score += 1 if step.tag == "*" else 10
            score += 5 * len(step.predicates)
        score += len(self.steps)  # longer paths are more specific
        return score


def compile_pattern(source: str) -> Pattern:
    """Parse the pattern mini-language; raises RuleError on bad syntax."""
    text = source.strip()
    if not text:
        raise RuleError("empty pattern")
    rooted = False
    if text.startswith("//"):
        text = text[2:]
    elif text.startswith("/"):
        rooted = True
        text = text[1:]

    steps: list[_Step] = []
    separators: list[str] = []
    while True:
        match = _STEP.match(text)
        if not match:
            raise RuleError(f"bad pattern step at {text!r} in {source!r}")
        tag = match.group(1)
        if "*" in tag and tag != "*":
            raise RuleError(f"wildcard must stand alone in {source!r}")
        text = text[match.end():]
        predicates: list[tuple[str, str | None]] = []
        while text.startswith("["):
            pmatch = _PREDICATE.match(text)
            if not pmatch:
                raise RuleError(f"bad predicate at {text!r} in {source!r}")
            predicates.append((pmatch.group(1), pmatch.group(2)))
            text = text[pmatch.end():]
        steps.append(_Step(tag, tuple(predicates)))
        if not text:
            break
        if text.startswith("//"):
            separators.append("//")
            text = text[2:]
        elif text.startswith("/"):
            separators.append("/")
            text = text[1:]
        else:
            raise RuleError(f"unexpected {text!r} in pattern {source!r}")

    return Pattern(
        source=source,
        steps=tuple(steps),
        separators=tuple(separators),
        rooted=rooted,
    )
