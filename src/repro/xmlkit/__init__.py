"""Self-contained XML toolkit.

The paper stores unit/page descriptors as XML files and drives
presentation through XSLT rules over template skeletons.  This package
provides the minimal XML machinery both need, with no dependency on any
external XML library:

- :mod:`repro.xmlkit.node` — an element/text tree with navigation helpers,
- :mod:`repro.xmlkit.parser` — a strict recursive-descent XML parser,
- :mod:`repro.xmlkit.writer` — serialization (compact and pretty-printed),
- :mod:`repro.xmlkit.patterns` — the path/predicate matching used by the
  presentation rule engine to select the nodes a rule applies to.
"""

from repro.xmlkit.node import Element, Text, Node
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.patterns import Pattern, compile_pattern
from repro.xmlkit.writer import serialize, pretty_print, open_tag, escape_text

__all__ = [
    "Node",
    "Element",
    "Text",
    "parse_xml",
    "serialize",
    "pretty_print",
    "open_tag",
    "escape_text",
    "Pattern",
    "compile_pattern",
]
