"""A strict, dependency-free XML parser.

Supports the subset descriptors and templates actually use: elements,
attributes (single- or double-quoted), character data, the five standard
entities plus numeric character references, comments, CDATA sections, and
an optional XML declaration / processing instructions (skipped).  DTDs
are not supported — descriptors are schema-validated by their loaders
instead.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.xmlkit.node import Element, Text

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character cursor with line/column tracking for error reporting."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def location(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        consumed = self.source[:pos]
        line = consumed.count("\n") + 1
        column = pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XmlParseError:
        line, column = self.location()
        return XmlParseError(message, line, column)

    def at_end(self) -> bool:
        return self.pos >= len(self.source)

    def peek(self, count: int = 1) -> str:
        return self.source[self.pos : self.pos + count]

    def take(self, count: int = 1) -> str:
        chunk = self.source[self.pos : self.pos + count]
        self.pos += len(chunk)
        return chunk

    def expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while not self.at_end() and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def take_until(self, literal: str, what: str) -> str:
        end = self.source.find(literal, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.source[self.pos : end]
        self.pos = end + len(literal)
        return chunk

    def take_name(self) -> str:
        start = self.pos
        if self.at_end() or self.source[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while not self.at_end() and self.source[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.source[start : self.pos]


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    """Expand &name; and &#N;/&#xN; references in character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> dict[str, str]:
    attrs: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        nxt = scanner.peek()
        if nxt in (">", "/", "?", ""):
            return attrs
        name = scanner.take_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.take()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        value = scanner.take_until(quote, "attribute value")
        if name in attrs:
            raise scanner.error(f"duplicate attribute {name!r}")
        attrs[name] = _decode_entities(value, scanner)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip whitespace, comments, PIs and the XML declaration."""
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.take(4)
            scanner.take_until("-->", "comment")
        elif scanner.peek(2) == "<?":
            scanner.take(2)
            scanner.take_until("?>", "processing instruction")
        elif scanner.peek(9) == "<!DOCTYPE":
            raise scanner.error("DOCTYPE declarations are not supported")
        else:
            return


def _parse_element(scanner: _Scanner) -> Element:
    scanner.expect("<")
    tag = scanner.take_name()
    attrs = _parse_attributes(scanner)
    scanner.skip_whitespace()
    if scanner.peek(2) == "/>":
        scanner.take(2)
        return Element(tag, attrs)
    scanner.expect(">")
    element = Element(tag, attrs)
    _parse_content(scanner, element)
    # _parse_content stops right after consuming "</"
    closing = scanner.take_name()
    if closing != tag:
        raise scanner.error(f"mismatched end tag </{closing}> for <{tag}>")
    scanner.skip_whitespace()
    scanner.expect(">")
    return element


def _parse_content(scanner: _Scanner, parent: Element) -> None:
    text_start = scanner.pos
    while True:
        if scanner.at_end():
            raise scanner.error(f"unterminated element <{parent.tag}>")
        ch = scanner.source[scanner.pos]
        if ch != "<":
            scanner.pos += 1
            continue
        # Flush pending character data.
        raw = scanner.source[text_start : scanner.pos]
        if raw:
            decoded = _decode_entities(raw, scanner)
            if decoded:
                parent.append(Text(decoded))
        if scanner.peek(2) == "</":
            scanner.take(2)
            return
        if scanner.peek(4) == "<!--":
            scanner.take(4)
            scanner.take_until("-->", "comment")
        elif scanner.peek(9) == "<![CDATA[":
            scanner.take(9)
            parent.append(Text(scanner.take_until("]]>", "CDATA section")))
        elif scanner.peek(2) == "<?":
            scanner.take(2)
            scanner.take_until("?>", "processing instruction")
        else:
            parent.append(_parse_element(scanner))
        text_start = scanner.pos


def parse_xml(source: str) -> Element:
    """Parse an XML document and return its root element.

    Raises :class:`~repro.errors.XmlParseError` with line/column on any
    malformation, including trailing garbage after the root element.
    """
    scanner = _Scanner(source)
    _skip_misc(scanner)
    if scanner.peek() != "<":
        raise scanner.error("document must start with an element")
    root = _parse_element(scanner)
    _skip_misc(scanner)
    if not scanner.at_end():
        raise scanner.error("content after the root element")
    return root
