"""XML serialization.

Two renderings are provided: :func:`serialize` produces compact,
whitespace-faithful output (used for page templates, where whitespace is
part of the HTML), and :func:`pretty_print` produces indented output
(used for descriptor files, which humans edit to override queries).
"""

from __future__ import annotations

from repro.xmlkit.node import Element, Node, Text


def escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(value: str) -> str:
    return escape_text(value).replace('"', "&quot;")


def open_tag(element: Element, self_close: bool = False) -> str:
    """The serialized start tag of ``element`` (used by the template
    compiler to emit static markup around dynamic slots)."""
    parts = [element.tag]
    parts.extend(f'{name}="{escape_attr(value)}"' for name, value in element.attrs.items())
    slash = "/" if self_close else ""
    return f"<{' '.join(parts)}{slash}>"


_open_tag = open_tag


def serialize(node: Node) -> str:
    """Compact serialization preserving all character data verbatim."""
    if isinstance(node, Text):
        return escape_text(node.value)
    assert isinstance(node, Element)
    if not node.children:
        return _open_tag(node, self_close=True)
    inner = "".join(serialize(child) for child in node.children)
    return f"{_open_tag(node, self_close=False)}{inner}</{node.tag}>"


def pretty_print(node: Node, indent: str = "  ") -> str:
    """Indented serialization for human-edited files (descriptors).

    Whitespace-only text nodes are dropped; other text is emitted inline
    when it is an element's only child, otherwise on its own line.
    """
    lines: list[str] = []
    _pretty(node, 0, indent, lines)
    return "\n".join(lines) + "\n"


def _pretty(node: Node, depth: int, indent: str, lines: list[str]) -> None:
    pad = indent * depth
    if isinstance(node, Text):
        if node.value.strip():
            lines.append(pad + escape_text(node.value.strip()))
        return
    assert isinstance(node, Element)
    children = [
        c for c in node.children
        if not (isinstance(c, Text) and not c.value.strip())
    ]
    if not children:
        lines.append(pad + _open_tag(node, self_close=True))
        return
    if len(children) == 1 and isinstance(children[0], Text):
        text = escape_text(children[0].value.strip())
        lines.append(
            f"{pad}{_open_tag(node, self_close=False)}{text}</{node.tag}>"
        )
        return
    lines.append(pad + _open_tag(node, self_close=False))
    for child in children:
        _pretty(child, depth + 1, indent, lines)
    lines.append(f"{pad}</{node.tag}>")
