"""WebApplication: from models to a served application.

This is the deployment step a WebRatio user gets at the push of a
button: generate, install, deploy, serve.  The pieces stay exposed
(``database``, ``registry``, ``ctx``, ``controller``...) because the
experiments poke at them individually.
"""

from __future__ import annotations

from repro.codegen import GeneratedProject, generate_project
from repro.descriptors import DescriptorRegistry
from repro.mvc import Controller, FrontController, HttpRequest, HttpResponse
from repro.rdb import Database
from repro.services import RuntimeContext
from repro.webml.model import WebMLModel


class WebApplication:
    """A generated, deployable, in-process data-intensive Web application."""

    def __init__(
        self,
        model: WebMLModel,
        bean_cache=None,
        view_renderer=None,
        page_cache=None,
        database: Database | None = None,
        pool_size: int = 8,
    ):
        self.model = model
        self.project: GeneratedProject = generate_project(model)
        self.database = database or Database(name=model.name)
        self._install_schema()
        self.registry = DescriptorRegistry()
        self.project.deploy(self.registry)
        self.ctx = RuntimeContext(
            self.database, self.registry, bean_cache=bean_cache,
            pool_size=pool_size,
        )
        # Deeper cache levels registered first (bean was registered by
        # the context): a page rebuild must find clean lower levels.
        fragment_cache = getattr(view_renderer, "fragment_cache", None)
        if fragment_cache is not None:
            self.ctx.register_cache_level("fragment", fragment_cache)
        self.page_cache = page_cache
        if page_cache is not None:
            self.ctx.register_cache_level("page", page_cache)
        self.controller = Controller.from_config(self.project.controller_config)
        self.front = FrontController(
            self.controller, self.ctx, view_renderer=view_renderer,
            page_cache=page_cache,
            device_classifier=self._device_classifier(view_renderer),
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the application down: flush and close the data tier.

        Idempotent; with a durable database this is what guarantees the
        WAL's group-commit tail reaches disk before process exit."""
        self.ctx.close()

    def __enter__(self) -> "WebApplication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def enable_commit_invalidation(self) -> None:
        """Route entity cache invalidation through the storage engine's
        commit stream (see
        :meth:`repro.services.base.RuntimeContext.enable_commit_invalidation`),
        using the generated model's table→entity mapping."""
        self.ctx.enable_commit_invalidation(
            self.project.mapping.table_entities()
        )

    @staticmethod
    def _device_classifier(view_renderer):
        """Page-cache keys must separate the device classes the
        presentation tier can actually distinguish."""
        registry = getattr(view_renderer, "device_registry", None)
        if registry is None:
            return None
        return lambda user_agent: registry.profile_for(user_agent).name

    def _install_schema(self) -> None:
        from repro.util import stable_topological_sort

        schemas = {s.name: s for s in self.project.mapping.schemas}
        # Referenced tables must exist first (self-references excluded).
        dependencies = {
            name: [fk.target_table for fk in schema.foreign_keys
                   if fk.target_table != name]
            for name, schema in schemas.items()
        }
        existing = set(self.database.table_names())
        for name in stable_topological_sort(schemas, dependencies):
            if name not in existing:
                self.database.create_table(schemas[name])

    # -- data seeding -----------------------------------------------------------

    def seed_entity(self, entity: str, rows: list[dict]) -> list[int]:
        """Insert instances of an ER entity; returns the new oids.

        Attribute names are translated to columns through the mapping;
        relationship roles can be set by passing ``<Role>`` keys holding
        the related oid (FK realizations only).
        """
        entity_map = self.project.mapping.entity_map(entity)
        oids = []
        for values in rows:
            row: dict = {}
            for key, value in values.items():
                if self.model.data_model.has_relationship(key):
                    spec = self.project.mapping.connection_write(key)
                    if spec["kind"] != "fk" or spec["table"] != entity_map.table:
                        raise ValueError(
                            f"role {key!r} is not an FK on {entity!r}; "
                            "connect instances via connect_instances()"
                        )
                    row[spec["column"]] = value
                else:
                    row[entity_map.column_for(key)] = value
            stored = self.database.insert_row(entity_map.table, row)
            oids.append(stored["oid"])
        return oids

    def connect_instances(self, role: str, source_oid: int,
                          target_oid: int) -> None:
        """Create a relationship instance (bridge or FK realization)."""
        spec = self.project.mapping.connection_write(role)
        if spec["kind"] == "bridge":
            source_col = spec["source_column"]
            target_col = spec["target_column"]
            if not spec["forward"]:
                source_oid, target_oid = target_oid, source_oid
            self.database.insert_row(
                spec["table"], {source_col: source_oid, target_col: target_oid}
            )
        else:
            from_entity, _ = self.project.mapping.role_endpoints(role)
            owner_is_from = spec["owner_entity"] == from_entity
            owner_oid = source_oid if owner_is_from else target_oid
            other_oid = target_oid if owner_is_from else source_oid
            self.database.execute(
                f"UPDATE {spec['table']} SET {spec['column']} = :other "
                "WHERE oid = :owner",
                {"other": other_oid, "owner": owner_oid},
            )

    # -- artifact export ---------------------------------------------------------------

    def export_files(self, directory: str) -> list[str]:
        """Write every generated artifact to disk, the way the original
        tool materializes a project (descriptors as editable XML, the
        controller configuration, DDL, template skeletons).

        Returns the written paths (relative to ``directory``).
        """
        import os

        written = []
        for relative_path, content in self.project.as_files().items():
            absolute = os.path.join(directory, relative_path)
            os.makedirs(os.path.dirname(absolute), exist_ok=True)
            with open(absolute, "w") as handle:
                handle.write(content)
            written.append(relative_path)
        return sorted(written)

    # -- serving --------------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        return self.front.handle(request)

    def get(self, url: str, session_id: str | None = None,
            headers: dict | None = None) -> HttpResponse:
        return self.handle(
            HttpRequest.from_url(url, headers=headers, session_id=session_id)
        )

    # -- conveniences used by examples/experiments ------------------------------------

    def page_url(self, site_view_name: str, page_name: str,
                 params: dict | None = None) -> str:
        from repro.mvc.http import build_url

        view = self.model.find_site_view(site_view_name)
        page = view.find_page(page_name)
        return build_url(f"/{view.id}/{page.id}", params)

    def operation_url(self, site_view_name: str, operation_name: str,
                      inputs: dict | None = None) -> str:
        from repro.mvc.http import build_url

        view = self.model.find_site_view(site_view_name)
        operation = next(
            o for o in view.operations if o.name == operation_name
        )
        params = {
            f"{operation.id}.{slot}": value
            for slot, value in (inputs or {}).items()
        }
        return build_url(f"/do/{operation.id}", params)
