"""A scripted browser for the in-process application.

Keeps a session across requests, follows redirects (bounded), and
exposes the last response for assertions.  Examples and the traffic
generator drive applications exclusively through this client, so every
experiment exercises the full request path: controller → action →
page/operation service → view.
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.mvc.http import HttpResponse, build_url

MAX_REDIRECTS = 8

_HREF = re.compile(r'href="([^"]+)"')
_FORM = re.compile(r"<form\b[^>]*>.*?</form>", re.DOTALL)
_FORM_ACTION = re.compile(r'action="([^"]*)"')
_INPUT = re.compile(r"<input\b[^>]*>")
_ATTR = re.compile(r'(\w+)="([^"]*)"')


class Browser:
    """One simulated user agent bound to one application.

    ``conditional=True`` turns on a real browser's HTTP cache
    behaviour: responses carrying an ``ETag`` are remembered per URL,
    revisits send ``If-None-Match`` (and ``Accept-Encoding: gzip``),
    and a 304 answer is materialized from the local cache — the
    response keeps status 304 (so callers can count revalidations) but
    ``body`` shows the cached content, the way the user would see it.
    """

    def __init__(self, app, user_agent: str = "Mozilla/5.0 (reproduction)",
                 conditional: bool = False):
        self.app = app
        self.user_agent = user_agent
        self.conditional = conditional
        self.session_id: str | None = None
        self.last_response: HttpResponse | None = None
        self.history: list[str] = []
        self._http_cache: dict[str, tuple[str, str]] = {}  # url → (etag, body)

    def get(self, url: str, follow_redirects: bool = True) -> HttpResponse:
        response = self._request(url)
        redirects = 0
        while follow_redirects and response.is_redirect:
            redirects += 1
            if redirects > MAX_REDIRECTS:
                raise ReproError(f"redirect loop starting from {url!r}")
            response = self._request(response.location)
        self.last_response = response
        return response

    def _request(self, url: str) -> HttpResponse:
        from repro.mvc.http import HttpRequest

        headers = {"User-Agent": self.user_agent}
        if self.conditional:
            headers["Accept-Encoding"] = "gzip"
            cached = self._http_cache.get(url)
            if cached is not None:
                headers["If-None-Match"] = cached[0]
        request = HttpRequest.from_url(
            url,
            headers=headers,
            session_id=self.session_id,
        )
        response = self.app.handle(request)
        self.session_id = request.session_id
        self.history.append(url)
        if self.conditional:
            if response.status == 304:
                cached = self._http_cache.get(url)
                if cached is not None:
                    response.body = cached[1]
            elif response.status == 200 and response.etag:
                self._http_cache[url] = (response.etag, response.body)
        return response

    # -- page interaction helpers -------------------------------------------------

    def links(self) -> list[str]:
        """All hrefs in the last response body."""
        if self.last_response is None:
            return []
        return _HREF.findall(self.last_response.body)

    def click(self, href_fragment: str) -> HttpResponse:
        """Follow the first link whose URL contains ``href_fragment``."""
        for href in self.links():
            if href_fragment in href:
                return self.get(href.replace("&amp;", "&"))
        raise ReproError(
            f"no link containing {href_fragment!r} on the current page"
        )

    def back(self) -> HttpResponse:
        """Re-request the previous page in this session's history."""
        if len(self.history) < 2:
            raise ReproError("no earlier page in the history")
        # drop the current entry and re-request the one before it
        self.history.pop()
        previous = self.history.pop()
        return self.get(previous)

    def forms(self) -> list[dict]:
        """The forms on the current page: action + named fields with
        their current values."""
        found = []
        for form_html in _FORM.findall(self.body):
            action_match = _FORM_ACTION.search(form_html)
            fields: dict = {}
            for input_html in _INPUT.findall(form_html):
                attrs = dict(_ATTR.findall(input_html))
                name = attrs.get("name")
                if name:
                    fields[name] = attrs.get("value", "")
            found.append({
                "action": action_match.group(1) if action_match else "",
                "fields": fields,
            })
        return found

    def submit(self, values: dict, form_index: int = 0,
               action_fragment: str | None = None) -> HttpResponse:
        """Fill and submit a rendered form (GET, like the markup).

        ``values`` are keyed by the *visible* trailing field name (e.g.
        ``"keyword"`` matches the parameter ``unit7.keyword``); pass the
        full parameter name to disambiguate.
        """
        forms = self.forms()
        if action_fragment is not None:
            candidates = [f for f in forms if action_fragment in f["action"]]
            if not candidates:
                raise ReproError(
                    f"no form with action containing {action_fragment!r}"
                )
            form = candidates[0]
        else:
            if form_index >= len(forms):
                raise ReproError(f"no form #{form_index} on the current page")
            form = forms[form_index]
        params = dict(form["fields"])
        for key, value in values.items():
            target = key if key in params else next(
                (name for name in params
                 if name.endswith(f".{key}") or name == key), None
            )
            if target is None:
                raise ReproError(f"form has no field matching {key!r}")
            params[target] = value
        return self.get(build_url(form["action"], params))

    @property
    def body(self) -> str:
        return self.last_response.body if self.last_response else ""

    @property
    def status(self) -> int:
        return self.last_response.status if self.last_response else 0
