"""Application assembly and a scripted client.

:class:`~repro.app.application.WebApplication` turns an ER + WebML model
into a served application: it generates the project, installs the
schema, deploys the descriptors, and wires the MVC runtime.
:class:`~repro.app.browser.Browser` is the simulated client used by
examples, tests, and the traffic generator.
"""

from repro.app.application import WebApplication
from repro.app.browser import Browser

__all__ = ["WebApplication", "Browser"]
