"""Table schema definitions.

A :class:`TableSchema` is pure metadata: columns with SQL types, the
primary key, foreign keys, unique constraints, and secondary indexes.
Storage and enforcement live in :mod:`repro.rdb.storage` and
:mod:`repro.rdb.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.rdb.types import SqlType


@dataclass
class Column:
    """A table column.

    ``auto_increment`` is only legal on single-column INTEGER primary
    keys; the database assigns ascending values when the INSERT omits the
    column or passes NULL.
    """

    name: str
    sql_type: SqlType
    nullable: bool = True
    auto_increment: bool = False
    default: object = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")


@dataclass
class ForeignKey:
    """``columns`` in this table reference ``target_columns`` of ``target_table``.

    ``on_delete`` is one of ``"restrict"`` (reject deletes of referenced
    rows), ``"cascade"`` (delete referencing rows too), or ``"set_null"``.
    """

    columns: tuple[str, ...]
    target_table: str
    target_columns: tuple[str, ...]
    on_delete: str = "restrict"

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        self.target_columns = tuple(self.target_columns)
        if len(self.columns) != len(self.target_columns):
            raise SchemaError("foreign key column count mismatch")
        if not self.columns:
            raise SchemaError("foreign key needs at least one column")
        if self.on_delete not in ("restrict", "cascade", "set_null"):
            raise SchemaError(f"unknown on_delete action {self.on_delete!r}")


@dataclass
class Index:
    """A named secondary index over one or more columns."""

    name: str
    columns: tuple[str, ...]
    unique: bool = False

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        if not self.columns:
            raise SchemaError("index needs at least one column")


@dataclass
class TableSchema:
    """Full definition of one table."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    unique_constraints: list[tuple[str, ...]] = field(default_factory=list)
    indexes: list[Index] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        self.primary_key = tuple(self.primary_key)
        self.unique_constraints = [tuple(u) for u in self.unique_constraints]
        self.validate()

    # -- lookups ------------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(col.name)
        for pk_col in self.primary_key:
            if pk_col not in seen:
                raise SchemaError(
                    f"primary key column {pk_col!r} not in table {self.name!r}"
                )
        for fkey in self.foreign_keys:
            for col in fkey.columns:
                if col not in seen:
                    raise SchemaError(
                        f"foreign key column {col!r} not in table {self.name!r}"
                    )
        for unique in self.unique_constraints:
            for col in unique:
                if col not in seen:
                    raise SchemaError(
                        f"unique constraint column {col!r} not in table {self.name!r}"
                    )
        for index in self.indexes:
            for col in index.columns:
                if col not in seen:
                    raise SchemaError(
                        f"index {index.name!r} column {col!r} not in table {self.name!r}"
                    )
        autos = [c for c in self.columns if c.auto_increment]
        if autos:
            if len(autos) > 1:
                raise SchemaError("at most one auto-increment column per table")
            if self.primary_key != (autos[0].name,):
                raise SchemaError(
                    "auto-increment requires the column to be the single-column "
                    "primary key"
                )

    # -- DDL -----------------------------------------------------------------

    def to_ddl(self) -> str:
        """Render a CREATE TABLE statement the engine's parser accepts."""
        lines: list[str] = []
        for col in self.columns:
            parts = [col.name, col.sql_type.ddl()]
            if not col.nullable:
                parts.append("NOT NULL")
            if col.auto_increment:
                parts.append("AUTOINCREMENT")
            lines.append("  " + " ".join(parts))
        if self.primary_key:
            lines.append(f"  PRIMARY KEY ({', '.join(self.primary_key)})")
        for unique in self.unique_constraints:
            lines.append(f"  UNIQUE ({', '.join(unique)})")
        for fkey in self.foreign_keys:
            clause = (
                f"  FOREIGN KEY ({', '.join(fkey.columns)}) REFERENCES "
                f"{fkey.target_table} ({', '.join(fkey.target_columns)})"
            )
            if fkey.on_delete != "restrict":
                clause += " ON DELETE " + fkey.on_delete.replace("_", " ").upper()
            lines.append(clause)
        body = ",\n".join(lines)
        return f"CREATE TABLE {self.name} (\n{body}\n)"
