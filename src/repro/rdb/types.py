"""SQL type system.

Each type knows how to validate/coerce a Python value on the way into
storage and how to render itself in DDL.  The set matches what the ER
mapping layer emits: INTEGER, FLOAT, VARCHAR(n), TEXT, BOOLEAN, DATE.
"""

from __future__ import annotations

import datetime
import re

from repro.errors import SchemaError, TypeMismatchError


class SqlType:
    """Base class; concrete types override :meth:`coerce` and ``ddl``."""

    name = "ANY"

    def ddl(self) -> str:
        return self.name

    def coerce(self, value):
        """Validate/convert ``value``; None always passes (NULL)."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.ddl() == other.ddl()

    def __hash__(self) -> int:
        return hash(self.ddl())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.ddl()


class IntegerType(SqlType):
    name = "INTEGER"

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not an INTEGER")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value, 10)
            except ValueError:
                pass
        raise TypeMismatchError(f"{value!r} is not an INTEGER")


class FloatType(SqlType):
    name = "FLOAT"

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"{value!r} is not a FLOAT")


class VarcharType(SqlType):
    name = "VARCHAR"

    def __init__(self, length: int):
        if length <= 0:
            raise SchemaError("VARCHAR length must be positive")
        self.length = length

    def ddl(self) -> str:
        return f"VARCHAR({self.length})"

    def coerce(self, value):
        if value is None:
            return None
        if not isinstance(value, str):
            value = str(value)
        if len(value) > self.length:
            raise TypeMismatchError(
                f"string of length {len(value)} exceeds VARCHAR({self.length})"
            )
        return value


class TextType(SqlType):
    name = "TEXT"

    def coerce(self, value):
        if value is None:
            return None
        return value if isinstance(value, str) else str(value)


class BooleanType(SqlType):
    name = "BOOLEAN"

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false"):
            return value.lower() == "true"
        raise TypeMismatchError(f"{value!r} is not a BOOLEAN")


class DateType(SqlType):
    name = "DATE"

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError:
                pass
        raise TypeMismatchError(f"{value!r} is not a DATE (expected ISO yyyy-mm-dd)")


_VARCHAR_DDL = re.compile(r"^VARCHAR\s*\(\s*(\d+)\s*\)$", re.IGNORECASE)

_SIMPLE_TYPES: dict[str, type[SqlType]] = {
    "INTEGER": IntegerType,
    "INT": IntegerType,
    "BIGINT": IntegerType,
    "FLOAT": FloatType,
    "REAL": FloatType,
    "DOUBLE": FloatType,
    "TEXT": TextType,
    "CLOB": TextType,
    "BOOLEAN": BooleanType,
    "BOOL": BooleanType,
    "DATE": DateType,
}


def type_from_name(ddl_name: str) -> SqlType:
    """Parse a DDL type name (``INTEGER``, ``VARCHAR(40)``...) to a type.

    Raises :class:`~repro.errors.SchemaError` for unknown names.
    """
    text = ddl_name.strip()
    match = _VARCHAR_DDL.match(text)
    if match:
        return VarcharType(int(match.group(1)))
    cls = _SIMPLE_TYPES.get(text.upper())
    if cls is None:
        raise SchemaError(f"unknown SQL type {ddl_name!r}")
    return cls()
