"""In-memory relational engine.

The paper's applications run against "any JDBC or ODBC compliant data
source"; this package is that data source for the reproduction.  It is a
real (if small) SQL engine, not a mock: generated queries are parsed,
planned, and executed against row storage, with primary/foreign-key and
NOT NULL enforcement, secondary indexes, and DB-API-style connections.

Layering (each module only imports the ones above it):

- :mod:`repro.rdb.types` — the SQL type system and value coercion,
- :mod:`repro.rdb.schema` — table/column/key/index definitions,
- :mod:`repro.rdb.expr` — the expression AST with SQL three-valued logic,
- :mod:`repro.rdb.sqlparser` — tokenizer + recursive-descent SQL parser,
- :mod:`repro.rdb.storage` — heap row storage with ordered hash indexes,
- :mod:`repro.rdb.wal` / :mod:`repro.rdb.snapshot` — the binary
  write-ahead log (typed, CRC-framed commit records) and atomic
  point-in-time snapshots,
- :mod:`repro.rdb.engine` — the storage engine boundary: tables,
  transactions, the commit stream, and (``DurableEngine``) WAL +
  snapshot persistence with crash recovery,
- :mod:`repro.rdb.replication` — WAL shipping: the primary-side
  record shipper and the read-only ``ReplicaEngine`` fed by snapshot
  bootstrap plus tail streaming (one write primary, N read replicas),
- :mod:`repro.rdb.statistics` / :mod:`repro.rdb.cost` — ANALYZE
  snapshots and the selectivity/cost model they feed,
- :mod:`repro.rdb.planner` / :mod:`repro.rdb.executor` — cost-based
  planning and execution of SELECT statements (index/range/IN scans,
  filters, hash and nested-loop joins, grouping, sorting, limits),
- :mod:`repro.rdb.adaptive` — the execution-feedback loop: per-plan
  cardinality ledgers, learned selectivity corrections the cost model
  consults, and drift-triggered replan/re-ANALYZE,
- :mod:`repro.rdb.database` — the logical-layer facade with DDL/DML
  and constraint enforcement over a pluggable engine,
- :mod:`repro.rdb.connection` — connections, cursors and a pool.
"""

from repro.rdb.adaptive import (
    AdaptiveController,
    CardinalityFeedback,
    SelectivityMemory,
)
from repro.rdb.connection import Connection, ConnectionPool, Cursor
from repro.rdb.database import Database
from repro.rdb.planner import PlannerFeatures
from repro.rdb.engine import (
    CommitEvent,
    CommitStream,
    DurableEngine,
    MemoryEngine,
    StorageEngine,
)
from repro.rdb.replication import (
    ReplicaEngine,
    ReplicationClient,
    ReplicationServer,
    open_replica,
)
from repro.rdb.schema import Column, ForeignKey, Index, TableSchema
from repro.rdb.statistics import ColumnStatistics, TableStatistics
from repro.rdb.types import (
    BooleanType,
    DateType,
    FloatType,
    IntegerType,
    SqlType,
    TextType,
    VarcharType,
    type_from_name,
)

__all__ = [
    "Database",
    "AdaptiveController",
    "CardinalityFeedback",
    "SelectivityMemory",
    "PlannerFeatures",
    "StorageEngine",
    "MemoryEngine",
    "DurableEngine",
    "CommitEvent",
    "CommitStream",
    "ReplicaEngine",
    "ReplicationClient",
    "ReplicationServer",
    "open_replica",
    "Connection",
    "Cursor",
    "ConnectionPool",
    "TableSchema",
    "Column",
    "ForeignKey",
    "Index",
    "TableStatistics",
    "ColumnStatistics",
    "SqlType",
    "IntegerType",
    "FloatType",
    "VarcharType",
    "TextType",
    "BooleanType",
    "DateType",
    "type_from_name",
]
