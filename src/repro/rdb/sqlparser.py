"""SQL tokenizer and recursive-descent parser.

Produces statement ASTs consumed by :mod:`repro.rdb.database` (DDL/DML)
and :mod:`repro.rdb.planner` (SELECT).  The dialect is the subset the
code generators emit plus what a developer overriding a descriptor query
reasonably writes: SELECT with INNER/LEFT joins, WHERE, GROUP BY/HAVING,
ORDER BY, LIMIT/OFFSET, DISTINCT, aggregates, scalar functions, ``?`` and
``:name`` parameters; INSERT (multi-row), UPDATE, DELETE; CREATE TABLE
with PRIMARY KEY / FOREIGN KEY / UNIQUE / NOT NULL / AUTOINCREMENT;
CREATE [UNIQUE] INDEX; DROP TABLE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SqlSyntaxError
from repro.rdb.expr import (
    AGGREGATE_NAMES,
    AggregateCall,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Concat,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Param,
)
from repro.rdb.schema import Column, ForeignKey, Index, TableSchema
from repro.rdb.types import type_from_name

# ---------------------------------------------------------------------------
# Statement ASTs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression with an optional alias, or a star."""

    expr: Expr | None  # None means star
    alias: str | None = None
    star_table: str | None = None  # for "t.*"; plain "*" has expr None too

    @property
    def is_star(self) -> bool:
        return self.expr is None


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class Join:
    kind: str  # "inner" | "left"
    table: TableRef
    condition: Expr


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    source: TableRef
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None


@dataclass(frozen=True)
class CreateTable:
    schema: TableSchema


@dataclass(frozen=True)
class CreateIndex:
    index: Index
    table: str


@dataclass(frozen=True)
class DropTable:
    table: str
    if_exists: bool = False


@dataclass(frozen=True)
class Analyze:
    """``ANALYZE [table]`` — collect planner statistics; no table means
    every table."""

    table: str | None = None


Statement = (
    Select | Insert | Update | Delete | CreateTable | CreateIndex | DropTable
    | Analyze
)

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "ASC", "DESC", "AS", "JOIN", "INNER", "LEFT", "OUTER",
    "ON", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN", "INSERT",
    "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX",
    "UNIQUE", "PRIMARY", "KEY", "FOREIGN", "REFERENCES", "DROP", "IF",
    "EXISTS", "CASCADE", "RESTRICT", "AUTOINCREMENT", "TRUE", "FALSE",
    "ANALYZE",
}

_PUNCTUATION = ("||", "<=", ">=", "<>", "!=", "(", ")", ",", ".", "*", "+",
                "-", "/", "%", "=", "<", ">", "?")


@dataclass(frozen=True)
class _Token:
    kind: str  # keyword | name | number | string | punct | param | end
    value: str
    position: int


def tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            j = i + 1
            pieces: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string at offset {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        pieces.append("'")
                        j += 2
                        continue
                    break
                pieces.append(sql[j])
                j += 1
            tokens.append(_Token("string", "".join(pieces), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            saw_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not saw_dot)):
                if sql[j] == ".":
                    # a dot not followed by a digit is a qualifier, not a decimal
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    saw_dot = True
                j += 1
            tokens.append(_Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            kind = "keyword" if word.upper() in _KEYWORDS else "name"
            value = word.upper() if kind == "keyword" else word
            tokens.append(_Token(kind, value, i))
            i = j
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at offset {i}")
            tokens.append(_Token("name", sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch == ":":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlSyntaxError(f"bare ':' at offset {i}")
            tokens.append(_Token("param", sql[i + 1 : j], i))
            i = j
            continue
        for punct in _PUNCTUATION:
            if sql.startswith(punct, i):
                tokens.append(_Token("punct", punct, i))
                i += len(punct)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(_Token("end", "", n))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._positional_count = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        near = token.value or "end of input"
        return SqlSyntaxError(f"{message} near {near!r} in: {self.sql.strip()!r}")

    def accept_keyword(self, *words: str) -> str | None:
        token = self.peek()
        if token.kind == "keyword" and token.value in words:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_punct(self, *values: str) -> str | None:
        token = self.peek()
        if token.kind == "punct" and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise self.error(f"expected {value!r}")

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind == "name":
            self.advance()
            return token.value
        # Non-reserved use of keywords as identifiers is not supported;
        # the generators never emit such names.
        raise self.error("expected an identifier")

    # -- entry points ---------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self.peek()
        if token.kind != "keyword":
            raise self.error("expected a statement keyword")
        if token.value == "SELECT":
            statement = self.parse_select()
        elif token.value == "INSERT":
            statement = self.parse_insert()
        elif token.value == "UPDATE":
            statement = self.parse_update()
        elif token.value == "DELETE":
            statement = self.parse_delete()
        elif token.value == "CREATE":
            statement = self.parse_create()
        elif token.value == "DROP":
            statement = self.parse_drop()
        elif token.value == "ANALYZE":
            statement = self.parse_analyze()
        else:
            raise self.error(f"unsupported statement {token.value}")
        if self.peek().kind != "end":
            raise self.error("unexpected trailing input")
        return statement

    # -- SELECT ----------------------------------------------------------------

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        source = self.parse_table_ref()
        joins: list[Join] = []
        while True:
            kind = None
            if self.accept_keyword("JOIN") or self.accept_keyword("INNER"):
                if self.tokens[self.pos - 1].value == "INNER":
                    self.expect_keyword("JOIN")
                kind = "inner"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "left"
            if kind is None:
                break
            table = self.parse_table_ref()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            joins.append(Join(kind, table, condition))

        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        limit: int | None = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self.parse_nonnegative_int("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self.parse_nonnegative_int("OFFSET")
        return Select(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_nonnegative_int(self, what: str) -> int:
        token = self.peek()
        if token.kind != "number" or "." in token.value:
            raise self.error(f"{what} expects an integer")
        self.advance()
        return int(token.value)

    def parse_select_item(self) -> SelectItem:
        if self.accept_punct("*"):
            return SelectItem(expr=None)
        # "table.*"
        token = self.peek()
        if (
            token.kind == "name"
            and self.tokens[self.pos + 1].value == "."
            and self.tokens[self.pos + 2].value == "*"
        ):
            table = self.expect_name()
            self.expect_punct(".")
            self.expect_punct("*")
            return SelectItem(expr=None, star_table=table)
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.peek().kind == "name":
            alias = self.expect_name()
        return SelectItem(expr=expr, alias=alias)

    def parse_table_ref(self) -> TableRef:
        table = self.expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.peek().kind == "name":
            alias = self.expect_name()
        return TableRef(table, alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, descending)

    # -- DML ---------------------------------------------------------------------

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_name()
        self.expect_punct("(")
        columns = [self.expect_name()]
        while self.accept_punct(","):
            columns.append(self.expect_name())
        self.expect_punct(")")
        self.expect_keyword("VALUES")
        rows: list[tuple[Expr, ...]] = []
        while True:
            self.expect_punct("(")
            values = [self.parse_expr()]
            while self.accept_punct(","):
                values.append(self.parse_expr())
            self.expect_punct(")")
            if len(values) != len(columns):
                raise self.error(
                    f"INSERT has {len(columns)} columns but {len(values)} values"
                )
            rows.append(tuple(values))
            if not self.accept_punct(","):
                break
        return Insert(table, tuple(columns), tuple(rows))

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_name()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def parse_assignment(self) -> tuple[str, Expr]:
        column = self.expect_name()
        self.expect_punct("=")
        return column, self.parse_expr()

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_name()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Delete(table, where)

    # -- DDL ---------------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        unique = bool(self.accept_keyword("UNIQUE"))
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        raise self.error("expected TABLE or INDEX after CREATE")

    def parse_create_table(self) -> CreateTable:
        name = self.expect_name()
        self.expect_punct("(")
        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[ForeignKey] = []
        uniques: list[tuple[str, ...]] = []
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                if primary_key:
                    raise self.error("duplicate PRIMARY KEY clause")
                primary_key = tuple(self.parse_name_list())
            elif self.accept_keyword("FOREIGN"):
                self.expect_keyword("KEY")
                fk_columns = self.parse_name_list()
                self.expect_keyword("REFERENCES")
                target = self.expect_name()
                target_columns = self.parse_name_list()
                on_delete = "restrict"
                if self.accept_keyword("ON"):
                    self.expect_keyword("DELETE")
                    if self.accept_keyword("CASCADE"):
                        on_delete = "cascade"
                    elif self.accept_keyword("RESTRICT"):
                        on_delete = "restrict"
                    elif self.accept_keyword("SET"):
                        self.expect_keyword("NULL")
                        on_delete = "set_null"
                    else:
                        raise self.error("expected CASCADE, RESTRICT or SET NULL")
                foreign_keys.append(
                    ForeignKey(tuple(fk_columns), target, tuple(target_columns),
                               on_delete)
                )
            elif self.accept_keyword("UNIQUE"):
                uniques.append(tuple(self.parse_name_list()))
            else:
                columns.append(self.parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        schema = TableSchema(
            name=name,
            columns=columns,
            primary_key=primary_key,
            foreign_keys=foreign_keys,
            unique_constraints=uniques,
        )
        return CreateTable(schema)

    def parse_column_def(self) -> Column:
        name = self.expect_name()
        type_token = self.peek()
        if type_token.kind != "name":
            raise self.error(f"expected a type for column {name!r}")
        self.advance()
        type_text = type_token.value
        if self.accept_punct("("):
            size = self.parse_nonnegative_int("type size")
            self.expect_punct(")")
            type_text = f"{type_text}({size})"
        sql_type = type_from_name(type_text)
        nullable = True
        auto_increment = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("AUTOINCREMENT"):
                auto_increment = True
            else:
                break
        return Column(name, sql_type, nullable=nullable, auto_increment=auto_increment)

    def parse_name_list(self) -> list[str]:
        self.expect_punct("(")
        names = [self.expect_name()]
        while self.accept_punct(","):
            names.append(self.expect_name())
        self.expect_punct(")")
        return names

    def parse_create_index(self, unique: bool) -> CreateIndex:
        name = self.expect_name()
        self.expect_keyword("ON")
        table = self.expect_name()
        columns = self.parse_name_list()
        return CreateIndex(Index(name, tuple(columns), unique=unique), table)

    def parse_analyze(self) -> Analyze:
        self.expect_keyword("ANALYZE")
        if self.peek().kind == "name":
            return Analyze(self.expect_name())
        return Analyze(None)

    def parse_drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTable(self.expect_name(), if_exists)

    # -- expressions ----------------------------------------------------------
    # precedence: OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < add < mul < unary

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = And(left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "punct" and token.value in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            op = "<>" if token.value == "!=" else token.value
            return Comparison(op, left, self.parse_additive())
        if token.kind == "keyword":
            negated = False
            if token.value == "NOT":
                # NOT here only as part of IN/LIKE/BETWEEN (e.g. "x NOT IN")
                nxt = self.tokens[self.pos + 1]
                if nxt.kind == "keyword" and nxt.value in ("IN", "LIKE", "BETWEEN"):
                    self.advance()
                    negated = True
                    token = self.peek()
            if token.value == "IS":
                self.advance()
                is_negated = bool(self.accept_keyword("NOT"))
                self.expect_keyword("NULL")
                return IsNull(left, negated=is_negated)
            if token.value == "IN":
                self.advance()
                self.expect_punct("(")
                options = [self.parse_expr()]
                while self.accept_punct(","):
                    options.append(self.parse_expr())
                self.expect_punct(")")
                return InList(left, tuple(options), negated=negated)
            if token.value == "LIKE":
                self.advance()
                return Like(left, self.parse_additive(), negated=negated)
            if token.value == "BETWEEN":
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("AND")
                high = self.parse_additive()
                return Between(left, low, high, negated=negated)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept_punct("||"):
                left = Concat(left, self.parse_multiplicative())
            elif self.accept_punct("+"):
                left = Arithmetic("+", left, self.parse_multiplicative())
            elif self.accept_punct("-"):
                left = Arithmetic("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            if self.accept_punct("*"):
                left = Arithmetic("*", left, self.parse_unary())
            elif self.accept_punct("/"):
                left = Arithmetic("/", left, self.parse_unary())
            elif self.accept_punct("%"):
                left = Arithmetic("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept_punct("-"):
            return Negate(self.parse_unary())
        if self.accept_punct("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "param":
            self.advance()
            return Param(token.value)
        if token.kind == "punct" and token.value == "?":
            self.advance()
            self._positional_count += 1
            return Param(str(self._positional_count))
        if token.kind == "keyword" and token.value == "NULL":
            self.advance()
            return Literal(None)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value == "TRUE")
        if token.kind == "punct" and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind == "name":
            return self.parse_name_expression()
        raise self.error("expected an expression")

    def parse_name_expression(self) -> Expr:
        name = self.expect_name()
        # function call (scalar or aggregate)
        if self.peek().kind == "punct" and self.peek().value == "(":
            upper = name.upper()
            self.advance()  # consume "("
            if upper in AGGREGATE_NAMES:
                distinct = bool(self.accept_keyword("DISTINCT"))
                if self.accept_punct("*"):
                    if upper != "COUNT":
                        raise self.error(f"{upper}(*) is only valid for COUNT")
                    self.expect_punct(")")
                    return AggregateCall("COUNT", None, distinct=False)
                argument = self.parse_expr()
                self.expect_punct(")")
                return AggregateCall(upper, argument, distinct=distinct)
            args: list[Expr] = []
            if not self.accept_punct(")"):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
                self.expect_punct(")")
            return FunctionCall(upper, tuple(args))
        # qualified column
        if self.accept_punct("."):
            column = self.expect_name()
            return ColumnRef(name, column)
        return ColumnRef(None, name)


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement; raises SqlSyntaxError on malformed input."""
    return _Parser(sql).parse_statement()


def parse_select(sql: str) -> Select:
    """Parse SQL that must be a SELECT (used by unit descriptors)."""
    statement = parse_sql(sql)
    if not isinstance(statement, Select):
        raise SqlSyntaxError(f"expected a SELECT statement, got: {sql.strip()!r}")
    return statement
