"""The storage engine behind the logical database layer.

:class:`repro.rdb.database.Database` is split in two along the classic
engine boundary: the *logical* layer (parser, planner, compiler,
executor, constraint enforcement) stays in ``database.py``; everything
that owns state lives here, behind an explicit interface —

- **tables and indexes** (the :class:`~repro.rdb.storage.TableStore`
  registry),
- **transactions** (undo logs for rollback, typed redo records for
  durability),
- **durability** (:class:`DurableEngine`: a write-ahead log, periodic
  snapshots with log truncation, and crash recovery that replays the
  committed WAL suffix over the latest snapshot),
- **the commit stream** (every committed transaction is published as a
  :class:`CommitEvent`, the hook cache invalidation rides today and
  WAL-shipping replication attaches to next).

Two engines implement the interface:

- :class:`MemoryEngine` — the seed behaviour, byte for byte: pure
  in-memory state, undo-log transactions, nothing survives the
  process.  Failed autocommit statements keep their partial effects,
  exactly as before the refactor.
- :class:`DurableEngine` — redo records reach a binary WAL with
  fsync-on-commit (or group commit) before a commit returns; recovery
  replays the longest committed prefix.  Autocommit statements become
  atomic: a failure mid-statement rolls the statement back, so the
  in-memory state never diverges from what the log can reproduce.

Locking: the engine has no locks of its own.  Every mutating call
happens under the owning database's write lock (commits are serialized
by design), which is also why plain counters suffice throughout.

DDL is not transactional (matching the seed): a rollback restores DML
but keeps schema changes, so the engine logs the rolled-back
transaction's DDL ops as their own commit record — the log replays to
the same schema the process ended with.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.rdb.schema import Index, TableSchema
from repro.rdb.statistics import collect_statistics
from repro.rdb.storage import TableStore
from repro.rdb.wal import (
    OP_ANALYZE,
    OP_CREATE_INDEX,
    OP_CREATE_TABLE,
    OP_DELETE,
    OP_DROP_TABLE,
    OP_INSERT,
    OP_UPDATE,
    CommitRecord,
    WriteAheadLog,
    committed_prefix_boundaries,
    read_log,
)

_DDL_OPCODES = frozenset(
    (OP_CREATE_TABLE, OP_CREATE_INDEX, OP_DROP_TABLE, OP_ANALYZE)
)


@dataclass(frozen=True)
class CommitEvent:
    """One committed transaction as seen by downstream consumers.

    ``ops`` are the typed redo records (see
    :class:`repro.rdb.wal.CommitRecord`), ``tables`` the names they
    touch.  Cache invalidation only needs ``tables``; replication ships
    the full ``ops``.  A ``bootstrap`` event marks a wholesale state
    replacement (a replica installing a snapshot): no per-entity write
    set is meaningful, so subscribers should flush rather than
    invalidate selectively.
    """

    lsn: int
    tables: frozenset
    ops: tuple
    durable: bool = False
    bootstrap: bool = False


class CommitStream:
    """Ordered fan-out of :class:`CommitEvent` to subscribers.

    Events are published *after* the database write lock is released
    (commits are already serialized, so ordering is preserved), which
    keeps subscriber work — cache invalidation, future replication
    shipping — off the engine's critical section and free to take its
    own locks.
    """

    def __init__(self) -> None:
        self._subscribers: list = []
        self.events_published = 0

    def subscribe(self, callback) -> None:
        """Attach ``callback(event)``; duplicates are ignored."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def publish(self, event: CommitEvent) -> None:
        self.events_published += 1
        for callback in list(self._subscribers):
            callback(event)


@dataclass
class _Transaction:
    """In-flight transaction state: undo for rollback, redo for the log."""

    explicit: bool
    #: reversed on rollback: ("insert", table, row_id, None) /
    #: ("update"/"delete", table, row_id, old_row)
    undo: list = field(default_factory=list)
    #: replayed on recovery, in order (see CommitRecord op tuples)
    redo: list = field(default_factory=list)
    #: reentrancy depth of implicit statement scopes
    depth: int = 0


class _StatementScope:
    """Handle yielded by :meth:`StorageEngine.statement_scope`; carries
    the commit event (if this scope committed) out to the caller so it
    can be published after the write lock is released."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event: CommitEvent | None = None


class StorageEngine:
    """The in-memory engine and the base of the durable one.

    Subclass hooks: :meth:`_persist` makes a commit record durable
    (no-op here), :attr:`statement_atomic` decides whether a failed
    autocommit statement is rolled back (durable) or keeps its partial
    effects (seed behaviour).
    """

    mode = "memory"
    statement_atomic = False

    def __init__(self) -> None:
        self.tables: dict[str, TableStore] = {}
        self.commit_stream = CommitStream()
        self.commits = 0
        self.rollbacks = 0
        self._txn: _Transaction | None = None
        self._next_lsn = 1
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release engine resources; safe to call more than once."""
        self._closed = True

    def bind_observability(self, obs) -> None:
        """Attach the application's metrics registry (durable engines
        publish the fsync histogram here)."""

    # -- transactions -------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True inside an *explicit* begin/commit span (statement-scoped
        implicit transactions are invisible, as before the refactor)."""
        txn = self._txn
        return txn is not None and txn.explicit

    def begin(self) -> None:
        if self._txn is not None:
            raise QueryError("a transaction is already active")
        self._txn = _Transaction(explicit=True)

    def commit(self) -> CommitEvent | None:
        txn = self._txn
        if txn is None or not txn.explicit:
            raise QueryError("no active transaction to commit")
        event = self._commit_records(txn.redo)
        self._txn = None
        self.commits += 1
        return event

    def rollback(self) -> CommitEvent | None:
        """Undo the active transaction's DML.

        DDL survives (it is not transactional, matching the seed), so
        any DDL ops the transaction carried are committed as their own
        record — the returned event, for the caller to publish.
        """
        txn = self._txn
        if txn is None or not txn.explicit:
            raise QueryError("no active transaction to roll back")
        self._txn = None
        self.rollbacks += 1
        self._apply_undo(txn.undo)
        ddl_ops = [op for op in txn.redo if op[0] in _DDL_OPCODES]
        if ddl_ops:
            return self._commit_records(ddl_ops)
        return None

    @contextlib.contextmanager
    def statement_scope(self):
        """The commit scope of one top-level statement.

        Inside an explicit transaction this is a passthrough (records
        accumulate until ``commit``).  Otherwise the outermost scope is
        an implicit transaction committed on success; on failure a
        durable engine rolls the statement back while the memory engine
        keeps partial effects (seed behaviour).  Nested scopes (a
        statement executing through another public entry point) attach
        to the outermost one.
        """
        scope = _StatementScope()
        txn = self._txn
        if txn is not None and txn.explicit:
            yield scope
            return
        if txn is not None:
            txn.depth += 1
            try:
                yield scope
            finally:
                txn.depth -= 1
            return
        txn = _Transaction(explicit=False, depth=1)
        self._txn = txn
        try:
            yield scope
        except BaseException:
            self._txn = None
            if self.statement_atomic:
                self._apply_undo(txn.undo)
            raise
        else:
            self._txn = None
            scope.event = self._commit_records(txn.redo)
            self.commits += 1

    def _apply_undo(self, undo: list) -> None:
        for kind, table, row_id, row in reversed(undo):
            store = self.tables[table]
            if kind == "insert":
                if row_id in store.rows:
                    store.delete_row(row_id)
            elif kind == "delete":
                store.restore_row(row_id, row)
            else:  # update
                store.force_row(row_id, row)

    def _commit_records(self, redo: list) -> CommitEvent | None:
        """Seal ``redo`` into a commit record; returns its event."""
        if not redo:
            return None
        record = CommitRecord(self._next_lsn, redo)
        self._persist(record)
        self._next_lsn += 1
        return CommitEvent(
            lsn=record.lsn,
            tables=frozenset(record.tables()),
            ops=tuple(redo),
            durable=self.mode == "durable",
        )

    def _persist(self, record: CommitRecord) -> None:
        """Durability hook; the in-memory engine keeps nothing."""

    def replay_record(self, record: CommitRecord) -> None:
        """Replay one committed record's ops into the table registry.

        Shared by crash recovery (a durable engine replaying its own
        WAL suffix) and replication (a replica applying shipped
        records): ops are known-good — they committed once — so no
        constraint re-checks beyond what index rebuilds enforce.
        """
        for op in record.ops:
            opcode = op[0]
            if opcode == OP_INSERT:
                self.tables[op[1]].apply_redo_insert(op[2], op[3])
            elif opcode == OP_UPDATE:
                self.tables[op[1]].force_row(op[2], op[3])
            elif opcode == OP_DELETE:
                self.tables[op[1]].delete_row(op[2])
            elif opcode == OP_CREATE_TABLE:
                self.tables[op[1].name] = TableStore(op[1])
            elif opcode == OP_CREATE_INDEX:
                self.tables[op[1]].add_index(op[2])
            elif opcode == OP_DROP_TABLE:
                del self.tables[op[1]]
            elif opcode == OP_ANALYZE:
                targets = (
                    [self.tables[op[1]]] if op[1] is not None
                    else list(self.tables.values())
                )
                for store in targets:
                    store.statistics = collect_statistics(store)

    # -- mutation records ---------------------------------------------------
    # Called by the logical layer at each write, always inside a
    # statement scope or explicit transaction.

    def _require_txn(self) -> _Transaction:
        txn = self._txn
        if txn is None:
            raise QueryError(
                "engine mutation outside a transaction or statement scope"
            )
        return txn

    def note_insert(self, table: str, row_id: int, row: dict) -> None:
        txn = self._require_txn()
        txn.undo.append(("insert", table, row_id, None))
        txn.redo.append((OP_INSERT, table, row_id, row))

    def note_update(self, table: str, row_id: int,
                    old: dict, new: dict) -> None:
        txn = self._require_txn()
        txn.undo.append(("update", table, row_id, old))
        txn.redo.append((OP_UPDATE, table, row_id, new))

    def note_delete(self, table: str, row_id: int, old: dict) -> None:
        txn = self._require_txn()
        txn.undo.append(("delete", table, row_id, old))
        txn.redo.append((OP_DELETE, table, row_id))

    def note_create_table(self, schema: TableSchema) -> None:
        self._require_txn().redo.append((OP_CREATE_TABLE, schema))

    def note_create_index(self, table: str, index: Index) -> None:
        self._require_txn().redo.append((OP_CREATE_INDEX, table, index))

    def note_drop_table(self, table: str) -> None:
        self._require_txn().redo.append((OP_DROP_TABLE, table))

    def note_analyze(self, table: str | None) -> None:
        self._require_txn().redo.append((OP_ANALYZE, table))

    # -- observation --------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recent commit (0 before any)."""
        return self._next_lsn - 1

    def observability_stats(self) -> dict:
        return {
            "engine": self.mode,
            "last_lsn": self.last_lsn,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "commit_events_published": self.commit_stream.events_published,
            "commit_subscribers": self.commit_stream.subscriber_count,
        }


class MemoryEngine(StorageEngine):
    """The default engine: exactly the seed's in-memory behaviour."""


class DurableEngine(StorageEngine):
    """WAL + snapshot persistence under a directory.

    ``directory`` holds ``wal.log`` (the append-only commit log) and
    ``snapshot.db`` (the latest checkpoint).  Construction *is*
    recovery: load the snapshot if present, replay the committed WAL
    suffix, truncate any torn tail, and open the log for appending.

    ``group_commit_window`` > 0 defers fsyncs up to that many seconds
    (see :class:`repro.rdb.wal.WriteAheadLog`); ``checkpoint_bytes``
    triggers an automatic snapshot + log truncation whenever the WAL
    grows past the threshold.
    """

    mode = "durable"
    statement_atomic = True

    def __init__(self, directory: str, group_commit_window: float = 0.0,
                 checkpoint_bytes: int | None = None):
        super().__init__()
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.snapshot_path = os.path.join(directory, "snapshot.db")
        self.wal_path = os.path.join(directory, "wal.log")
        self.checkpoint_bytes = checkpoint_bytes
        self.snapshots_written = 0
        self.last_snapshot_bytes = 0
        self.recovery_stats = {
            "snapshot_loaded": False,
            "snapshot_lsn": 0,
            "wal_records_replayed": 0,
            "wal_records_skipped": 0,
            "recovered_lsn": 0,
        }
        self._recover()
        self.wal = WriteAheadLog(self.wal_path,
                                 group_window_seconds=group_commit_window)

    # -- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        stats = self.recovery_stats
        snapshot_lsn = 0
        if os.path.exists(self.snapshot_path):
            from repro.rdb.snapshot import load_snapshot

            snapshot_lsn, self.tables = load_snapshot(self.snapshot_path)
            stats["snapshot_loaded"] = True
            stats["snapshot_lsn"] = snapshot_lsn
        recovered_lsn = snapshot_lsn
        for record in read_log(self.wal_path):
            if record.lsn <= snapshot_lsn:
                # A crash between snapshot rename and log truncation
                # leaves already-checkpointed records behind; skip them.
                stats["wal_records_skipped"] += 1
                continue
            self.replay_record(record)
            recovered_lsn = record.lsn
            stats["wal_records_replayed"] += 1
        stats["recovered_lsn"] = recovered_lsn
        self._next_lsn = recovered_lsn + 1
        self._truncate_torn_tail()

    def _truncate_torn_tail(self) -> None:
        """Drop any torn/corrupt frame so new appends stay readable
        (a reader stops at the first bad frame, which would otherwise
        hide everything appended after it)."""
        if not os.path.exists(self.wal_path):
            return
        from repro.rdb.wal import MAGIC

        boundaries = committed_prefix_boundaries(self.wal_path)
        with open(self.wal_path, "rb") as handle:
            header_ok = handle.read(len(MAGIC)) == MAGIC
        valid_end = boundaries[-1] if boundaries else (
            len(MAGIC) if header_ok else 0
        )
        if os.path.getsize(self.wal_path) > valid_end:
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(valid_end)

    # -- durability ---------------------------------------------------------

    def _persist(self, record: CommitRecord) -> None:
        self.wal.append(record)
        if (self.checkpoint_bytes is not None
                and self.wal.size_bytes >= self.checkpoint_bytes):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Write a snapshot at the current commit point and truncate
        the WAL; returns the snapshot size in bytes."""
        from repro.rdb.snapshot import write_snapshot

        self.wal.flush()
        size = write_snapshot(self.snapshot_path, self.last_lsn, self.tables)
        self.wal.reset()
        self.snapshots_written += 1
        self.last_snapshot_bytes = size
        return size

    def flush(self) -> None:
        """Force any group-commit-deferred WAL bytes to disk."""
        self.wal.flush()

    def close(self) -> None:
        """Flush and close the log; safe to call more than once."""
        if not self._closed:
            self.wal.close()
        super().close()

    def bind_observability(self, obs) -> None:
        self.wal.bind_fsync_histogram(
            obs.metrics.histogram("rdb.wal_fsync_seconds")
        )

    def observability_stats(self) -> dict:
        stats = super().observability_stats()
        stats.update(self.wal.stats())
        stats.update({
            "snapshots_written": self.snapshots_written,
            "last_snapshot_bytes": self.last_snapshot_bytes,
            "checkpoint_bytes_threshold": self.checkpoint_bytes,
        })
        stats["recovery"] = dict(self.recovery_stats)
        return stats
