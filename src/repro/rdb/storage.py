"""Row storage: heaps plus ordered hash indexes.

A :class:`TableStore` owns the rows of one table.  Rows are dicts keyed
by column name, addressed by a monotonically increasing row id.  The
primary key and every unique constraint are enforced with hash indexes;
secondary indexes accelerate equality lookups, and a lazily maintained
sorted view of each index's keys additionally serves prefix, range and
``IN``-list scans for the cost-based planner.
"""

from __future__ import annotations

import bisect

from repro.errors import IntegrityError, SchemaError
from repro.rdb.columnar import ColumnStore
from repro.rdb.schema import Index, TableSchema


class _NullKey:
    """Total-order sentinel standing for NULL inside index keys.

    Indexes store *every* row (a row whose indexed column is NULL must
    still be found by a prefix scan on the other columns), so NULL needs
    a place in the key ordering: before every real value, equal only to
    itself.  Probes are built from real values and therefore never match
    a sentinel-bearing key by accident.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other):
        return other is not self

    def __le__(self, other):
        return True

    def __gt__(self, other):
        return False

    def __ge__(self, other):
        return other is self

    def __repr__(self):
        return "NULL"


_NULL = _NullKey()


class _HashIndex:
    """Equality index mapping a tuple of column values to row ids,
    with an on-demand sorted key list for ordered access paths."""

    def __init__(self, columns: tuple[str, ...], unique: bool):
        self.columns = columns
        self.unique = unique
        self._entries: dict[tuple, set[int]] = {}
        self._sorted: list[tuple] | None = None
        self._sorted_dirty = True

    def key_for(self, row: dict) -> tuple:
        """The index key of ``row``; NULLs become the ordering sentinel."""
        return tuple(
            _NULL if row[c] is None else row[c] for c in self.columns
        )

    def unique_key_for(self, row: dict) -> tuple | None:
        """The key used for uniqueness checks; None when any indexed
        column is NULL (SQL unique constraints ignore NULLs)."""
        key = tuple(row[c] for c in self.columns)
        if any(v is None for v in key):
            return None
        return key

    def would_violate(self, row: dict, ignore_row_id: int | None = None) -> bool:
        if not self.unique:
            return False
        key = self.unique_key_for(row)
        if key is None:
            return False
        holders = self._entries.get(key, set())
        return any(rid != ignore_row_id for rid in holders)

    def add(self, row_id: int, row: dict) -> None:
        key = self.key_for(row)
        if key not in self._entries:
            self._sorted_dirty = True
            self._entries[key] = set()
        self._entries[key].add(row_id)

    def remove(self, row_id: int, row: dict) -> None:
        key = self.key_for(row)
        holders = self._entries.get(key)
        if holders:
            holders.discard(row_id)
            if not holders:
                del self._entries[key]
                self._sorted_dirty = True

    def find(self, key: tuple) -> set[int]:
        return self._entries.get(key, set())

    # -- ordered access -----------------------------------------------------

    def sorted_keys(self) -> list[tuple] | None:
        """All index keys in ascending order, rebuilt lazily after key-set
        changes.  None when keys are mutually incomparable (mixed-type
        column) — callers then fall back to a sequential scan."""
        if self._sorted_dirty:
            try:
                self._sorted = sorted(self._entries)
            except TypeError:
                self._sorted = None
            self._sorted_dirty = False
        return self._sorted

    def scan_prefix(self, prefix: tuple) -> set[int] | None:
        """Row ids whose key starts with ``prefix`` (real values only).
        Full-width prefixes degrade to a hash probe; None means the
        ordered view is unavailable and the caller must scan."""
        if len(prefix) == len(self.columns):
            return set(self.find(prefix))
        keys = self.sorted_keys()
        if keys is None:
            return None
        width = len(prefix)
        try:
            start = bisect.bisect_left(keys, prefix, key=lambda t: t[:width])
        except TypeError:
            return None
        matches: set[int] = set()
        for position in range(start, len(keys)):
            key = keys[position]
            if key[:width] != prefix:
                break
            matches |= self._entries[key]
        return matches

    def scan_range(
        self,
        prefix: tuple,
        low,
        low_inclusive: bool,
        high,
        high_inclusive: bool,
    ) -> set[int] | None:
        """Row ids matching ``prefix`` equality on the leading columns
        plus a (half-)open interval on the next column.  NULLs in the
        range column never qualify (a range predicate is UNKNOWN on
        NULL).  None means fall back to a sequential scan."""
        keys = self.sorted_keys()
        if keys is None:
            return None
        width = len(prefix)
        try:
            if low is not None:
                side = bisect.bisect_left if low_inclusive else bisect.bisect_right
                start = side(keys, prefix + (low,), key=lambda t: t[: width + 1])
            else:
                start = bisect.bisect_left(keys, prefix, key=lambda t: t[:width])
            matches: set[int] = set()
            for position in range(start, len(keys)):
                key = keys[position]
                if key[:width] != prefix:
                    break
                value = key[width]
                if value is _NULL:
                    continue
                if high is not None:
                    past = value >= high if not high_inclusive else value > high
                    if past:
                        break
                matches |= self._entries[key]
            return matches
        except TypeError:
            return None


class TableStore:
    """Rows and indexes of one table.

    Constraint checks that need *other* tables (foreign keys) live in
    :class:`repro.rdb.database.Database`; this class enforces what is
    local: NOT NULL, type coercion, primary-key and unique uniqueness.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: dict[int, dict] = {}
        self._next_row_id = 1
        self._auto_counter = 0
        #: snapshot written by ANALYZE (see repro.rdb.statistics);
        #: None until the table has been analyzed.
        self.statistics = None
        #: lazily built column-major mirror (repro.rdb.columnar); the
        #: mutators below feed it O(1) sync records once it exists
        self.column_store = ColumnStore(self)
        self._indexes: dict[str, _HashIndex] = {}
        if schema.primary_key:
            self._indexes["#pk"] = _HashIndex(schema.primary_key, unique=True)
        for position, unique_cols in enumerate(schema.unique_constraints):
            self._indexes[f"#unique{position}"] = _HashIndex(unique_cols, unique=True)
        for index in schema.indexes:
            self.add_index(index)

    # -- index management -----------------------------------------------------

    def add_index(self, index: Index) -> None:
        if index.name in self._indexes:
            raise SchemaError(f"duplicate index name {index.name!r}")
        hash_index = _HashIndex(index.columns, index.unique)
        for row_id, row in self.rows.items():
            if hash_index.would_violate(row):
                raise IntegrityError(
                    f"cannot create unique index {index.name!r}: duplicate values"
                )
            hash_index.add(row_id, row)
        self._indexes[index.name] = hash_index

    def index_on(self, columns: tuple[str, ...]) -> _HashIndex | None:
        """An index whose column tuple exactly matches ``columns``."""
        for index in self._indexes.values():
            if index.columns == columns:
                return index
        return None

    def iter_indexes(self) -> list[tuple[str, _HashIndex]]:
        """(name, index) pairs for access-path enumeration."""
        return list(self._indexes.items())

    # -- row lifecycle ---------------------------------------------------------

    def prepare_row(self, values: dict) -> dict:
        """Build a full, type-coerced row from partial column values.

        Applies auto-increment/defaults and checks NOT NULL.  Raises on
        unknown columns so typos surface instead of silently dropping data.
        """
        for name in values:
            if not self.schema.has_column(name):
                raise SchemaError(
                    f"table {self.schema.name!r} has no column {name!r}"
                )
        row: dict = {}
        for column in self.schema.columns:
            value = values.get(column.name)
            if value is None and column.auto_increment:
                self._auto_counter += 1
                value = self._auto_counter
            if value is None and column.default is not None:
                value = column.default
            value = column.sql_type.coerce(value)
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"column {self.schema.name}.{column.name} is NOT NULL"
                )
            row[column.name] = value
        # Keep the auto counter ahead of explicitly supplied ids.
        for column in self.schema.columns:
            if column.auto_increment and isinstance(row[column.name], int):
                self._auto_counter = max(self._auto_counter, row[column.name])
        return row

    def check_unique(self, row: dict, ignore_row_id: int | None = None) -> None:
        for name, index in self._indexes.items():
            if index.would_violate(row, ignore_row_id):
                what = "primary key" if name == "#pk" else "unique constraint"
                raise IntegrityError(
                    f"{what} violation on {self.schema.name}({', '.join(index.columns)})"
                )

    def insert_prepared(self, row: dict) -> int:
        self.check_unique(row)
        row_id = self._next_row_id
        self._next_row_id += 1
        self.rows[row_id] = row
        for index in self._indexes.values():
            index.add(row_id, row)
        self.column_store.note_insert(row_id, row)
        return row_id

    def update_row(self, row_id: int, changes: dict) -> dict:
        old = self.rows[row_id]
        new = dict(old)
        for name, value in changes.items():
            column = self.schema.column(name)
            value = column.sql_type.coerce(value)
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"column {self.schema.name}.{name} is NOT NULL"
                )
            new[name] = value
        self.check_unique(new, ignore_row_id=row_id)
        for index in self._indexes.values():
            index.remove(row_id, old)
            index.add(row_id, new)
        self.rows[row_id] = new
        self.column_store.note_update(row_id, new)
        return new

    def delete_row(self, row_id: int) -> dict:
        row = self.rows.pop(row_id)
        for index in self._indexes.values():
            index.remove(row_id, row)
        self.column_store.note_delete(row_id)
        return row

    # -- transaction support (no checks: restoring a prior state) ----------

    def restore_row(self, row_id: int, row: dict) -> None:
        """Re-insert a previously deleted row under its original id."""
        self.rows[row_id] = row
        for index in self._indexes.values():
            index.add(row_id, row)
        # a re-inserted key appends at the end of the rows dict, which is
        # exactly where the columnar sync puts it
        self.column_store.note_insert(row_id, row)
        self._next_row_id = max(self._next_row_id, row_id + 1)

    # -- durability support (WAL replay and snapshots) ---------------------

    @property
    def auto_counter(self) -> int:
        """The auto-increment high-water mark (snapshot/replay state)."""
        return self._auto_counter

    @property
    def next_row_id(self) -> int:
        return self._next_row_id

    def restore_counters(self, auto_counter: int, next_row_id: int) -> None:
        """Reinstate counters exactly as a snapshot recorded them."""
        self._auto_counter = auto_counter
        self._next_row_id = next_row_id

    def apply_redo_insert(self, row_id: int, row: dict) -> None:
        """Replay a committed insert: the row is known-good, so no
        constraint checks; counters advance past the replayed values."""
        self.restore_row(row_id, row)
        for column in self.schema.columns:
            if column.auto_increment and isinstance(row.get(column.name), int):
                self._auto_counter = max(self._auto_counter, row[column.name])

    def force_row(self, row_id: int, row: dict) -> None:
        """Overwrite a row with an earlier version (undo of an update)."""
        old = self.rows[row_id]
        for index in self._indexes.values():
            index.remove(row_id, old)
            index.add(row_id, row)
        self.rows[row_id] = row
        self.column_store.note_update(row_id, row)

    # -- lookups ------------------------------------------------------------------

    def find_by_key(self, columns: tuple[str, ...], key: tuple) -> list[int]:
        """Row ids whose ``columns`` equal ``key``, via an index when one
        exists, else a scan."""
        index = self.index_on(columns)
        if index is not None:
            return sorted(index.find(key))
        matches = []
        for row_id, row in self.rows.items():
            if tuple(row[c] for c in columns) == key:
                matches.append(row_id)
        return matches

    def __len__(self) -> int:
        return len(self.rows)
