"""Row storage: heaps plus hash indexes.

A :class:`TableStore` owns the rows of one table.  Rows are dicts keyed
by column name, addressed by a monotonically increasing row id.  The
primary key and every unique constraint are enforced with hash indexes;
secondary indexes accelerate equality lookups.
"""

from __future__ import annotations

from repro.errors import IntegrityError, SchemaError
from repro.rdb.schema import Index, TableSchema


class _HashIndex:
    """Equality index mapping a tuple of column values to row ids."""

    def __init__(self, columns: tuple[str, ...], unique: bool):
        self.columns = columns
        self.unique = unique
        self._entries: dict[tuple, set[int]] = {}

    def key_for(self, row: dict) -> tuple | None:
        """The index key of ``row``; None when any indexed column is NULL
        (SQL unique constraints ignore NULLs)."""
        key = tuple(row[c] for c in self.columns)
        if any(v is None for v in key):
            return None
        return key

    def would_violate(self, row: dict, ignore_row_id: int | None = None) -> bool:
        if not self.unique:
            return False
        key = self.key_for(row)
        if key is None:
            return False
        holders = self._entries.get(key, set())
        return any(rid != ignore_row_id for rid in holders)

    def add(self, row_id: int, row: dict) -> None:
        key = self.key_for(row)
        if key is None:
            return
        self._entries.setdefault(key, set()).add(row_id)

    def remove(self, row_id: int, row: dict) -> None:
        key = self.key_for(row)
        if key is None:
            return
        holders = self._entries.get(key)
        if holders:
            holders.discard(row_id)
            if not holders:
                del self._entries[key]

    def find(self, key: tuple) -> set[int]:
        return self._entries.get(key, set())


class TableStore:
    """Rows and indexes of one table.

    Constraint checks that need *other* tables (foreign keys) live in
    :class:`repro.rdb.database.Database`; this class enforces what is
    local: NOT NULL, type coercion, primary-key and unique uniqueness.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: dict[int, dict] = {}
        self._next_row_id = 1
        self._auto_counter = 0
        self._indexes: dict[str, _HashIndex] = {}
        if schema.primary_key:
            self._indexes["#pk"] = _HashIndex(schema.primary_key, unique=True)
        for position, unique_cols in enumerate(schema.unique_constraints):
            self._indexes[f"#unique{position}"] = _HashIndex(unique_cols, unique=True)
        for index in schema.indexes:
            self.add_index(index)

    # -- index management -----------------------------------------------------

    def add_index(self, index: Index) -> None:
        if index.name in self._indexes:
            raise SchemaError(f"duplicate index name {index.name!r}")
        hash_index = _HashIndex(index.columns, index.unique)
        for row_id, row in self.rows.items():
            if hash_index.would_violate(row):
                raise IntegrityError(
                    f"cannot create unique index {index.name!r}: duplicate values"
                )
            hash_index.add(row_id, row)
        self._indexes[index.name] = hash_index

    def index_on(self, columns: tuple[str, ...]) -> _HashIndex | None:
        """An index whose column tuple exactly matches ``columns``."""
        for index in self._indexes.values():
            if index.columns == columns:
                return index
        return None

    # -- row lifecycle ---------------------------------------------------------

    def prepare_row(self, values: dict) -> dict:
        """Build a full, type-coerced row from partial column values.

        Applies auto-increment/defaults and checks NOT NULL.  Raises on
        unknown columns so typos surface instead of silently dropping data.
        """
        for name in values:
            if not self.schema.has_column(name):
                raise SchemaError(
                    f"table {self.schema.name!r} has no column {name!r}"
                )
        row: dict = {}
        for column in self.schema.columns:
            value = values.get(column.name)
            if value is None and column.auto_increment:
                self._auto_counter += 1
                value = self._auto_counter
            if value is None and column.default is not None:
                value = column.default
            value = column.sql_type.coerce(value)
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"column {self.schema.name}.{column.name} is NOT NULL"
                )
            row[column.name] = value
        # Keep the auto counter ahead of explicitly supplied ids.
        for column in self.schema.columns:
            if column.auto_increment and isinstance(row[column.name], int):
                self._auto_counter = max(self._auto_counter, row[column.name])
        return row

    def check_unique(self, row: dict, ignore_row_id: int | None = None) -> None:
        for name, index in self._indexes.items():
            if index.would_violate(row, ignore_row_id):
                what = "primary key" if name == "#pk" else "unique constraint"
                raise IntegrityError(
                    f"{what} violation on {self.schema.name}({', '.join(index.columns)})"
                )

    def insert_prepared(self, row: dict) -> int:
        self.check_unique(row)
        row_id = self._next_row_id
        self._next_row_id += 1
        self.rows[row_id] = row
        for index in self._indexes.values():
            index.add(row_id, row)
        return row_id

    def update_row(self, row_id: int, changes: dict) -> dict:
        old = self.rows[row_id]
        new = dict(old)
        for name, value in changes.items():
            column = self.schema.column(name)
            value = column.sql_type.coerce(value)
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"column {self.schema.name}.{name} is NOT NULL"
                )
            new[name] = value
        self.check_unique(new, ignore_row_id=row_id)
        for index in self._indexes.values():
            index.remove(row_id, old)
            index.add(row_id, new)
        self.rows[row_id] = new
        return new

    def delete_row(self, row_id: int) -> dict:
        row = self.rows.pop(row_id)
        for index in self._indexes.values():
            index.remove(row_id, row)
        return row

    # -- transaction support (no checks: restoring a prior state) ----------

    def restore_row(self, row_id: int, row: dict) -> None:
        """Re-insert a previously deleted row under its original id."""
        self.rows[row_id] = row
        for index in self._indexes.values():
            index.add(row_id, row)
        self._next_row_id = max(self._next_row_id, row_id + 1)

    def force_row(self, row_id: int, row: dict) -> None:
        """Overwrite a row with an earlier version (undo of an update)."""
        old = self.rows[row_id]
        for index in self._indexes.values():
            index.remove(row_id, old)
            index.add(row_id, row)
        self.rows[row_id] = row

    # -- lookups ------------------------------------------------------------------

    def find_by_key(self, columns: tuple[str, ...], key: tuple) -> list[int]:
        """Row ids whose ``columns`` equal ``key``, via an index when one
        exists, else a scan."""
        index = self.index_on(columns)
        if index is not None:
            return sorted(index.find(key))
        matches = []
        for row_id, row in self.rows.items():
            if tuple(row[c] for c in columns) == key:
                matches.append(row_id)
        return matches

    def __len__(self) -> int:
        return len(self.rows)
