"""Columnar batch execution: column-major storage and vectorized kernels.

Row-at-a-time execution — even compiled (:mod:`repro.rdb.compile`) —
pays a Python-level function call per row per expression.  This module
adds the layout tier underneath: a :class:`ColumnStore` mirrors a
table's rows as parallel per-column Python lists (strings
dictionary-encoded to integer codes, NULLs tracked in a byte bitmap),
and eligible plans compile their scan→filter→project/aggregate pipeline
into *batch kernels* that sweep those lists chunk by chunk with
selection vectors — per-row interpreter dispatch collapses into C-speed
list comprehensions.

Consistency contract:

- The column store is **lazy**: it materializes on the first columnar
  scan and is dropped (not chased) by write bursts; point writes append
  O(1) sync records that the next scan drains (``column-sync lag`` in
  ``/_status``).  WAL replay and snapshot loads go through the same
  :class:`~repro.rdb.storage.TableStore` mutators, so recovery needs no
  columnar-specific path — the store simply rebuilds on first use after
  recovery.
- Scans observe **live positions in row-insertion order** — exactly the
  order a sequential heap walk yields — so columnar answers are
  positionally identical to the row engine's.  Deletes tombstone
  positions instead of shifting them; compaction rebuilds when the
  dead fraction grows.
- Every kernel reuses the row engine's comparison vocabulary
  (:func:`~repro.rdb.expr.compare_values`, LIKE's regex translation,
  SQL three-valued logic: a predicate keeps a row only when strictly
  ``True``).  The fast inline form (plain ``<``/``==`` comprehensions)
  is chosen only when the column's declared type and the constant's
  runtime type make it equivalent to ``compare_values``; anything else
  runs the shared helper per element, and a conjunct the kernel
  compiler cannot express at all falls back to its *compiled-row*
  predicate over the surviving positions — the ``CompileError``
  fallback discipline of :mod:`repro.rdb.compile`, one level up.
  (Deliberate divergence: ``float('nan')`` follows Python comparison
  semantics on the fast path, where ``compare_values``'s sign
  arithmetic would call NaN equal to everything.)
- Conjuncts run **most selective first** (estimates from
  :mod:`repro.rdb.cost`), vectorized kernels before per-row fallbacks.
  The planner's predicate pushdown already decouples evaluation order
  from WHERE-clause order, so this reordering can change which type
  error surfaces first, never which rows survive.

The four-way oracle (``tests/test_rdb_compile_oracle.py``) holds
columnar, compiled-row, interpreted, and seed execution to one
byte-identical answer; E20 measures the speedup.
"""

from __future__ import annotations

import datetime
import functools
import threading

from repro.errors import QueryError
from repro.rdb import cost
from repro.rdb.expr import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    _like_to_regex,
    compare_values,
)

#: pending sync records beyond which the store stops chasing point
#: writes and schedules a full (lazy) rebuild instead
MAX_PENDING_OPS = 1024
#: live-position count below which a tombstone-heavy store compacts
MIN_COMPACT_TOMBSTONES = 64
#: dict-encode a string column when ``distinct/non-null`` at build time
#: is at most this ratio (high-cardinality strings stay plain)
DICT_ENCODE_MAX_RATIO = 0.5
#: positions per batch: kernels run chunk-wise so selection vectors stay
#: cache-sized and the scan counters see real batch counts
CHUNK_SIZE = 4096

_MISSING = object()

#: sign predicates per comparison operator — the same decision
#: :mod:`repro.rdb.compile`'s ``_cmp_*`` helpers apply to
#: ``compare_values`` results
_SIGN_CHECKS = {
    "=": lambda sign: sign == 0,
    "<>": lambda sign: sign != 0,
    "<": lambda sign: sign < 0,
    "<=": lambda sign: sign <= 0,
    ">": lambda sign: sign > 0,
    ">=": lambda sign: sign >= 0,
}

_FLIPPED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: LIKE patterns repeat across executions; cache their compiled regexes
_like_regex = functools.lru_cache(maxsize=512)(_like_to_regex)


class _ConstScope:
    """Evaluation scope for column-free expressions (never consulted)."""

    def lookup(self, table, column):  # pragma: no cover - defensive
        raise QueryError(f"unknown column {column!r}")


_CONST_SCOPE = _ConstScope()


def _type_family(sql_type) -> str:
    """Coarse value family guaranteed by the coercion layer
    (:mod:`repro.rdb.types` keeps stored columns homogeneous)."""
    name = sql_type.name
    if name in ("INTEGER", "FLOAT"):
        return "number"
    if name in ("VARCHAR", "TEXT"):
        return "string"
    if name == "BOOLEAN":
        return "bool"
    if name == "DATE":
        return "date"
    return "any"


def _const_matches_family(value, family: str) -> bool:
    """True when ``family``-typed column values compare with ``value``
    through plain Python operators exactly as ``compare_values`` would."""
    if family == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool)
                and value == value)  # NaN follows compare_values quirks
    if family == "string":
        return isinstance(value, str)
    if family == "bool":
        return isinstance(value, bool)
    if family == "date":
        return type(value) is datetime.date
    return False


class _Column:
    """One column's parallel arrays.

    Plain columns keep raw ``values`` (``None`` marks NULL); dictionary
    encoded string columns keep integer ``codes`` plus the ``decode``
    list and ``encode`` map.  ``nulls`` is a byte bitmap either way, so
    ``IS [NOT] NULL`` kernels never touch the value arrays.
    """

    __slots__ = ("name", "values", "codes", "decode", "encode", "nulls")

    def __init__(self, name: str):
        self.name = name
        self.values: list = []
        self.codes: list | None = None
        self.decode: list | None = None
        self.encode: dict | None = None
        self.nulls = bytearray()

    @property
    def dict_encoded(self) -> bool:
        return self.codes is not None

    def value_at(self, position: int):
        """The raw value at ``position`` (decoding dict columns)."""
        if self.codes is not None:
            code = self.codes[position]
            return None if code is None else self.decode[code]
        return self.values[position]


class ColumnStore:
    """Column-major mirror of one :class:`~repro.rdb.storage.TableStore`.

    Lifecycle: unbuilt until the first columnar scan; once built, the
    owning TableStore's mutators append O(1) sync records (under the
    database write lock) that :meth:`ensure_synced` drains at the next
    scan (under a store-local mutex — concurrent *readers* may race to
    sync, writers are already excluded by the database write lock).  A
    write burst larger than ``max(MAX_PENDING_OPS, live/2)`` drops the
    store back to unbuilt instead of chasing it.

    ``counters`` is observability state (lock-free, lost updates
    tolerated like every other metrics site).
    """

    def __init__(self, store):
        self.store = store  # owning TableStore (back-reference)
        self.built = False
        self.columns: dict[str, _Column] = {}
        self.row_ids: list[int] = []
        self.live = bytearray()
        self.position_of: dict[int, int] = {}
        self.tombstones = 0
        self._pending: list[tuple] = []
        self._lock = threading.Lock()
        self.counters = {
            "builds": 0,
            "rebuilds": 0,
            "synced_ops": 0,
            "dropped_rebuilds": 0,
            "scans": 0,
            "batches_scanned": 0,
            "max_pending": 0,
            "dict_hits": 0,
            "dict_misses": 0,
        }

    # -- write-side hooks (called by TableStore under the write lock) ------

    def note_insert(self, row_id: int, row: dict) -> None:
        if self.built:
            self._note(("i", row_id, row))

    def note_update(self, row_id: int, row: dict) -> None:
        if self.built:
            self._note(("u", row_id, row))

    def note_delete(self, row_id: int) -> None:
        if self.built:
            self._note(("d", row_id, None))

    def _note(self, op: tuple) -> None:
        self._pending.append(op)
        depth = len(self._pending)
        if depth > self.counters["max_pending"]:
            self.counters["max_pending"] = depth
        if depth > max(MAX_PENDING_OPS, len(self.row_ids) // 2):
            # write burst: rebuilding lazily at the next scan is cheaper
            # than applying this many point records
            self.counters["dropped_rebuilds"] += 1
            self._drop()

    def _drop(self) -> None:
        self.built = False
        self._pending.clear()
        self.columns = {}
        self.row_ids = []
        self.live = bytearray()
        self.position_of = {}
        self.tombstones = 0

    def pending_ops(self) -> int:
        """Current column-sync lag (records not yet applied)."""
        return len(self._pending)

    # -- read-side maintenance ---------------------------------------------

    def ensure_synced(self) -> "ColumnStore":
        """Build on first use, else drain pending sync records; compact
        when tombstones dominate.  Rebuilds *replace* the arrays rather
        than mutating them, so a reader racing past this call keeps a
        consistent snapshot of the previous generation."""
        with self._lock:
            if not self.built:
                self._build()
            elif self._pending:
                self._apply_pending()
            if self.tombstones >= max(
                MIN_COMPACT_TOMBSTONES, len(self.row_ids) // 2
            ):
                self._build()
        return self

    def _build(self) -> None:
        store = self.store
        counters = self.counters
        counters["rebuilds" if self.built else "builds"] += 1
        rows = list(store.rows.values())
        self.row_ids = list(store.rows)
        self.position_of = {
            row_id: pos for pos, row_id in enumerate(self.row_ids)
        }
        self.live = bytearray(b"\x01" * len(rows))
        self.tombstones = 0
        columns: dict[str, _Column] = {}
        for column_def in store.schema.columns:
            name = column_def.name
            column = _Column(name)
            values = [row[name] for row in rows]
            column.nulls = bytearray(
                1 if value is None else 0 for value in values
            )
            non_null = len(values) - sum(column.nulls)
            if (
                _type_family(column_def.sql_type) == "string"
                and non_null
                and len({v for v in values if v is not None})
                <= non_null * DICT_ENCODE_MAX_RATIO
            ):
                encode: dict = {}
                decode: list = []
                codes: list = []
                hits = misses = 0
                for value in values:
                    if value is None:
                        codes.append(None)
                        continue
                    code = encode.get(value)
                    if code is None:
                        code = len(decode)
                        encode[value] = code
                        decode.append(value)
                        misses += 1
                    else:
                        hits += 1
                    codes.append(code)
                column.values = []
                column.codes = codes
                column.decode = decode
                column.encode = encode
                counters["dict_hits"] += hits
                counters["dict_misses"] += misses
            else:
                column.values = values
            columns[name] = column
        self.columns = columns
        self._pending.clear()
        self.built = True

    def _apply_pending(self) -> None:
        counters = self.counters
        names = [c.name for c in self.store.schema.columns]
        for kind, row_id, row in self._pending:
            if kind == "d":
                position = self.position_of.pop(row_id, None)
                if position is not None and self.live[position]:
                    self.live[position] = 0
                    self.tombstones += 1
                continue
            position = self.position_of.get(row_id)
            if kind == "i" or position is None:
                # inserts (and restores of previously deleted ids) land
                # at the end — the same place the rows dict puts them
                position = len(self.row_ids)
                self.row_ids.append(row_id)
                self.position_of[row_id] = position
                self.live.append(1)
                for name in names:
                    self._append_value(self.columns[name], row[name])
            else:
                for name in names:
                    self._set_value(self.columns[name], position, row[name])
        counters["synced_ops"] += len(self._pending)
        self._pending.clear()

    def _encode_value(self, column: _Column, value):
        if value is None:
            return None
        code = column.encode.get(value)
        if code is None:
            code = len(column.decode)
            column.encode[value] = code
            column.decode.append(value)
            self.counters["dict_misses"] += 1
        else:
            self.counters["dict_hits"] += 1
        return code

    def _append_value(self, column: _Column, value) -> None:
        column.nulls.append(1 if value is None else 0)
        if column.dict_encoded:
            column.codes.append(self._encode_value(column, value))
        else:
            column.values.append(value)

    def _set_value(self, column: _Column, position: int, value) -> None:
        column.nulls[position] = 1 if value is None else 0
        if column.dict_encoded:
            column.codes[position] = self._encode_value(column, value)
        else:
            column.values[position] = value

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot plus current state, for ``/_status``."""
        snapshot = dict(self.counters)
        snapshot["built"] = self.built
        snapshot["positions"] = len(self.row_ids)
        snapshot["tombstones"] = self.tombstones
        snapshot["pending_ops"] = len(self._pending)
        snapshot["dict_columns"] = sum(
            1 for column in self.columns.values() if column.dict_encoded
        )
        return snapshot


# ---------------------------------------------------------------------------
# Kernel compilation: one conjunct -> batch kernel
# ---------------------------------------------------------------------------
#
# A *kernel spec* carries ``bind(column_store, params) -> kernel`` where
# ``kernel(selection) -> selection`` narrows a position vector.  Binding
# happens per execution: constants (parameters included) are evaluated
# then, and the kernel closes over the *current* arrays, so a rebuild
# between executions is transparent.


class _KernelSpec:
    """One predicate conjunct, compiled for batch evaluation."""

    __slots__ = ("bind", "selectivity", "vectorized")

    def __init__(self, bind, selectivity: float, vectorized: bool):
        self.bind = bind
        self.selectivity = selectivity
        self.vectorized = vectorized


def _empty_kernel(sel):
    return []


def _identity_kernel(sel):
    return sel


def _memo_kernel(codes, decode, verdict):
    """Evaluate ``verdict`` once per *distinct* dictionary code touched
    by the selection (lazy: codes never selected are never decoded)."""
    memo: dict = {}
    get = memo.get

    def kernel(sel):
        out = []
        append = out.append
        for i in sel:
            code = codes[i]
            if code is None:
                continue
            keep = get(code, _MISSING)
            if keep is _MISSING:
                memo[code] = keep = verdict(decode[code]) is True
            if keep:
                append(i)
        return out

    return kernel


def _value_kernel(values, verdict):
    """Per-element helper evaluation over a plain column (the shared
    ``compare_values`` semantics, NULL operands skipped up front)."""

    def kernel(sel):
        out = []
        append = out.append
        for i in sel:
            value = values[i]
            if value is not None and verdict(value) is True:
                append(i)
        return out

    return kernel


def _column_of(expr: Expr, binding: str, schema) -> str | None:
    """``expr``'s column name when it is a plain reference to this
    scan's table, else None."""
    if isinstance(expr, ColumnRef) and expr.table in (None, binding) \
            and schema.has_column(expr.column):
        return expr.column
    return None


def _is_const(expr: Expr) -> bool:
    return not expr.column_refs()


def _comparison_bind(name: str, op: str, const_expr: Expr, family: str):
    check = _SIGN_CHECKS[op]

    def bind(column_store, params):
        const = const_expr.evaluate(_CONST_SCOPE, params)
        if const is None:
            return _empty_kernel  # comparison with NULL is UNKNOWN
        column = column_store.columns[name]
        if column.dict_encoded:
            if isinstance(const, str) and op in ("=", "<>"):
                code = column.encode.get(const, -1)
                codes = column.codes
                if op == "=":
                    return lambda sel: [i for i in sel if codes[i] == code]
                return lambda sel: [
                    i for i in sel
                    if codes[i] is not None and codes[i] != code
                ]
            verdict = (lambda value, _c=const, _ck=check:
                       _ck(compare_values(value, _c)))
            return _memo_kernel(column.codes, column.decode, verdict)
        values = column.values
        if _const_matches_family(const, family):
            c = const
            if op == "=":
                # None == c is False, so no NULL guard is needed
                return lambda sel: [i for i in sel if values[i] == c]
            if op == "<>":
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and values[i] != c
                ]
            if op == "<":
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and values[i] < c
                ]
            if op == "<=":
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and values[i] <= c
                ]
            if op == ">":
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and values[i] > c
                ]
            return lambda sel: [
                i for i in sel
                if values[i] is not None and values[i] >= c
            ]
        verdict = (lambda value, _c=const, _ck=check:
                   _ck(compare_values(value, _c)))
        return _value_kernel(values, verdict)

    return bind


def _is_null_bind(name: str, negated: bool):
    def bind(column_store, params):
        nulls = column_store.columns[name].nulls
        if negated:
            return lambda sel: [i for i in sel if not nulls[i]]
        return lambda sel: [i for i in sel if nulls[i]]

    return bind


def _between_bind(name: str, low_expr: Expr, high_expr: Expr,
                  negated: bool, family: str):
    def bind(column_store, params):
        low = low_expr.evaluate(_CONST_SCOPE, params)
        high = high_expr.evaluate(_CONST_SCOPE, params)
        if low is None or high is None:
            return _empty_kernel  # a NULL bound makes BETWEEN UNKNOWN
        column = column_store.columns[name]

        def verdict(value, _lo=low, _hi=high, _neg=negated):
            low_sign = compare_values(value, _lo)
            high_sign = compare_values(value, _hi)
            inside = low_sign >= 0 and high_sign <= 0
            return not inside if _neg else inside

        if column.dict_encoded:
            return _memo_kernel(column.codes, column.decode, verdict)
        values = column.values
        if (_const_matches_family(low, family)
                and _const_matches_family(high, family)):
            if negated:
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None
                    and not (low <= values[i] <= high)
                ]
            return lambda sel: [
                i for i in sel
                if values[i] is not None and low <= values[i] <= high
            ]
        return _value_kernel(values, verdict)

    return bind


def _in_list_bind(name: str, options: tuple, negated: bool, family: str):
    def bind(column_store, params):
        evaluated = [
            option.evaluate(_CONST_SCOPE, params) for option in options
        ]
        saw_null = any(value is None for value in evaluated)
        present = [value for value in evaluated if value is not None]
        if negated and saw_null:
            # NOT IN with a NULL option is never True for any row
            return _empty_kernel
        column = column_store.columns[name]
        if column.dict_encoded and all(
            isinstance(value, str) for value in present
        ):
            codes = column.codes
            code_set = {
                column.encode[value] for value in present
                if value in column.encode
            }
            if negated:
                return lambda sel: [
                    i for i in sel
                    if codes[i] is not None and codes[i] not in code_set
                ]
            return lambda sel: [i for i in sel if codes[i] in code_set]

        def verdict(value, _opts=present, _null=saw_null, _neg=negated):
            for option in _opts:
                if compare_values(value, option) == 0:
                    return not _neg
            if _null:
                return None
            return _neg

        if column.dict_encoded:
            return _memo_kernel(column.codes, column.decode, verdict)
        values = column.values
        if present and all(
            _const_matches_family(value, family) for value in present
        ):
            value_set = set(present)
            if negated:
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and values[i] not in value_set
                ]
            return lambda sel: [i for i in sel if values[i] in value_set]
        return _value_kernel(values, verdict)

    return bind


def _like_bind(name: str, pattern_expr: Expr, negated: bool, family: str):
    def bind(column_store, params):
        pattern = pattern_expr.evaluate(_CONST_SCOPE, params)
        if pattern is None:
            return _empty_kernel
        regex = _like_regex(str(pattern))
        match = regex.match
        column = column_store.columns[name]

        def verdict(value, _m=match, _neg=negated):
            matched = _m(str(value)) is not None
            return not matched if _neg else matched

        if column.dict_encoded:
            return _memo_kernel(column.codes, column.decode, verdict)
        values = column.values
        if family == "string":
            if negated:
                return lambda sel: [
                    i for i in sel
                    if values[i] is not None and match(values[i]) is None
                ]
            return lambda sel: [
                i for i in sel
                if values[i] is not None and match(values[i]) is not None
            ]
        return _value_kernel(values, verdict)

    return bind


def _const_bind(expr: Expr):
    def bind(column_store, params):
        verdict = expr.evaluate(_CONST_SCOPE, params)
        return _identity_kernel if verdict is True else _empty_kernel

    return bind


def _fallback_bind(predicate_fn):
    """Per-position application of a compiled-row predicate — the escape
    hatch for conjunct shapes the kernel compiler does not cover."""

    def bind(column_store, params):
        rows = column_store.store.rows
        row_ids = column_store.row_ids

        def kernel(sel):
            out = []
            append = out.append
            for i in sel:
                if predicate_fn(rows[row_ids[i]], params) is True:
                    append(i)
            return out

        return kernel

    return bind


def _compile_conjunct(conjunct: Expr, binding: str, schema):
    """A vectorized bind function for ``conjunct``, or None when only
    the compiled-row fallback can evaluate it faithfully."""
    if _is_const(conjunct):
        return _const_bind(conjunct)
    if isinstance(conjunct, Comparison) and conjunct.op in _SIGN_CHECKS:
        name = _column_of(conjunct.left, binding, schema)
        if name is not None and _is_const(conjunct.right):
            family = _type_family(schema.column(name).sql_type)
            return _comparison_bind(name, conjunct.op, conjunct.right, family)
        name = _column_of(conjunct.right, binding, schema)
        if name is not None and _is_const(conjunct.left):
            family = _type_family(schema.column(name).sql_type)
            return _comparison_bind(
                name, _FLIPPED_OP[conjunct.op], conjunct.left, family
            )
        return None
    if isinstance(conjunct, IsNull):
        name = _column_of(conjunct.operand, binding, schema)
        if name is not None:
            return _is_null_bind(name, conjunct.negated)
        return None
    if isinstance(conjunct, Between):
        name = _column_of(conjunct.operand, binding, schema)
        if (name is not None and _is_const(conjunct.low)
                and _is_const(conjunct.high)):
            family = _type_family(schema.column(name).sql_type)
            return _between_bind(
                name, conjunct.low, conjunct.high, conjunct.negated, family
            )
        return None
    if isinstance(conjunct, InList):
        name = _column_of(conjunct.operand, binding, schema)
        if name is not None and all(
            _is_const(option) for option in conjunct.options
        ):
            family = _type_family(schema.column(name).sql_type)
            return _in_list_bind(
                name, conjunct.options, conjunct.negated, family
            )
        return None
    if isinstance(conjunct, Like):
        name = _column_of(conjunct.operand, binding, schema)
        if name is not None and _is_const(conjunct.pattern):
            family = _type_family(schema.column(name).sql_type)
            return _like_bind(
                name, conjunct.pattern, conjunct.negated, family
            )
        return None
    return None


def _split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten an AND tree (mirrors the planner's ``_conjuncts``)."""
    from repro.rdb.expr import And

    if expr is None:
        return []
    if isinstance(expr, And):
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


# ---------------------------------------------------------------------------
# The columnar pipeline
# ---------------------------------------------------------------------------


class ColumnarPipeline:
    """Batch executor for one eligible single-scan plan.

    Non-grouped plans filter column-wise, then feed the surviving row
    dicts to the plan's fused ``compiled_row_emit`` — projection and
    order keys stay byte-identical with the row engine because they run
    the *same* generated code.  Grouped plans partition surviving
    positions by the group columns (first-seen order, like the row
    engine), gather aggregate inputs column-wise, and emit each group
    through the plan's shared HAVING/projection tail.
    """

    def __init__(self, plan, scan, specs, fallback_count: int,
                 group_columns=None, agg_specs=None):
        self.plan = plan
        self.scan = scan
        self.specs = specs
        self.fallback_count = fallback_count
        self.grouped = group_columns is not None
        self.group_columns = group_columns or []
        self.agg_specs = agg_specs or []

    # -- filtering ----------------------------------------------------------

    def _survivors(self, column_store, params) -> list[int]:
        counters = column_store.counters
        counters["scans"] += 1
        kernels = [spec.bind(column_store, params) for spec in self.specs]
        total = len(column_store.row_ids)
        live = column_store.live
        has_tombstones = column_store.tombstones > 0
        survivors: list[int] = []
        extend = survivors.extend
        batches = 0
        for start in range(0, total, CHUNK_SIZE):
            stop = min(start + CHUNK_SIZE, total)
            batches += 1
            if has_tombstones:
                selection = [i for i in range(start, stop) if live[i]]
            else:
                selection = range(start, stop)
            for kernel in kernels:
                if not selection:
                    break
                selection = kernel(selection)
            if selection:
                extend(selection)
        counters["batches_scanned"] += batches
        return survivors

    # -- execution ----------------------------------------------------------

    def execute(self, params: dict):
        """Yield ``(out_row, order_keys)`` pairs — the same stream the
        row engine's execution paths produce, ready for the plan's
        shared distinct/sort/limit tail."""
        column_store = self.scan.store.column_store.ensure_synced()
        survivors = self._survivors(column_store, params)
        # the batch path has exact survivor counts for free; record them
        # where adaptive feedback / EXPLAIN ANALYZE expect scan actuals
        self.scan.actual_rows = len(survivors)
        if self.grouped:
            yield from self._execute_grouped(column_store, survivors, params)
            return
        emit = self.plan.compiled_row_emit
        rows = self.scan.store.rows
        row_ids = column_store.row_ids
        for i in survivors:
            yield emit(rows[row_ids[i]], params)

    def _key_reader(self, column_store, name: str):
        column = column_store.columns[name]
        if column.dict_encoded:
            codes = column.codes
            decode = column.decode
            return lambda i: (
                None if codes[i] is None else decode[codes[i]]
            )
        values = column.values
        return lambda i: values[i]

    def _execute_grouped(self, column_store, survivors, params):
        plan = self.plan
        if not self.group_columns:
            order = [0]
            positions_by_key = {0: survivors}
        else:
            readers = [
                self._key_reader(column_store, name)
                for name in self.group_columns
            ]
            if len(readers) == 1:
                key_of = readers[0]
            else:
                def key_of(i, _readers=readers):
                    return tuple(reader(i) for reader in _readers)
            positions_by_key: dict = {}
            order = []
            get = positions_by_key.get
            for i in survivors:
                key = key_of(i)
                bucket = get(key)
                if bucket is None:
                    positions_by_key[key] = bucket = []
                    order.append(key)
                bucket.append(i)
        if not plan.select.group_by and not survivors:
            # aggregates over an empty input still produce one row
            order = [0]
            positions_by_key = {0: []}
        rows = self.scan.store.rows
        row_ids = column_store.row_ids
        binding = self.scan.binding
        for key in order:
            positions = positions_by_key[key]
            aggregate_values: dict = {}
            for call, gather in self.agg_specs:
                if call not in aggregate_values:
                    aggregate_values[call] = gather(
                        column_store, positions, params
                    )
            if positions:
                representative = {binding: rows[row_ids[positions[0]]]}
            else:
                representative = {b: None for b in plan.columns_by_binding}
            yield from plan._emit_group(
                representative, aggregate_values, params
            )


def _column_gather(name: str, func: str, distinct: bool,
                   numeric_fast: bool, reduce_aggregate):
    """Aggregate-input gatherer reading one column's array directly."""

    def gather(column_store, positions, params):
        column = column_store.columns[name]
        if column.dict_encoded:
            codes = column.codes
            decode = column.decode
            values = [
                decode[codes[i]] for i in positions if codes[i] is not None
            ]
        else:
            raw = column.values
            values = [raw[i] for i in positions if raw[i] is not None]
        if numeric_fast and values:
            # left-to-right builtin sum == the shared reduce for
            # int/float inputs, minus the per-element lambda call
            if func == "SUM":
                return sum(values)
            if func == "AVG":
                return sum(values) / len(values)
        return reduce_aggregate(func, distinct, values)

    return gather


def _row_gather(argument_fn, func: str, distinct: bool, reduce_aggregate):
    """Aggregate-input gatherer for non-column arguments: the compiled
    row-mode argument expression runs per surviving row."""

    def gather(column_store, positions, params):
        rows = column_store.store.rows
        row_ids = column_store.row_ids
        values = []
        append = values.append
        for i in positions:
            value = argument_fn(rows[row_ids[i]], params)
            if value is not None:
                append(value)
        return reduce_aggregate(func, distinct, values)

    return gather


def _count_star_gather(column_store, positions, params):
    return len(positions)


def build_columnar_pipeline(plan):
    """A :class:`ColumnarPipeline` for ``plan``, or None when the plan
    shape is not batch-executable.

    Eligible: a single-table sequential scan whose non-grouped tail
    compiled to the fused row emit, or a grouped tail whose GROUP BY
    keys are plain column references (aggregate arguments may be
    anything — non-column arguments gather through their compiled row
    form).  Predicate conjuncts always work: unvectorizable ones run
    their compiled-row form over the shrinking selection.
    """
    # imported here: compile/executor sit downstream of storage, which
    # imports this module for ColumnStore
    from repro.rdb.compile import compile_scalar
    from repro.rdb.executor import ScanOp, reduce_aggregate

    root = plan.root
    if not isinstance(root, ScanOp) or root.access.kind != "seq":
        return None
    if len(plan.columns_by_binding) != 1:
        return None
    schema = root.store.schema
    binding = root.binding
    specs: list[_KernelSpec] = []
    fallbacks = 0
    for conjunct in _split_conjuncts(root.predicate):
        selectivity = cost.conjunct_selectivity(
            root.store, conjunct, getattr(plan, "feedback", None)
        )
        bind = _compile_conjunct(conjunct, binding, schema)
        if bind is not None:
            specs.append(_KernelSpec(bind, selectivity, True))
        else:
            fallbacks += 1
            predicate_fn = compile_scalar(
                conjunct, root._scope_columns, "row", "columnar-fallback"
            ).fn
            specs.append(
                _KernelSpec(_fallback_bind(predicate_fn), selectivity, False)
            )
    # most selective first; per-row fallbacks after every vectorized
    # kernel (they cost the most per surviving position)
    specs.sort(key=lambda spec: (not spec.vectorized, spec.selectivity))

    if not plan.grouped:
        if plan.compiled_row_emit is None:
            return None
        return ColumnarPipeline(plan, root, specs, fallbacks)

    group_columns = []
    for expr in plan.select.group_by:
        name = _column_of(expr, binding, schema)
        if name is None:
            return None  # computed group keys stay on the row path
        group_columns.append(name)
    agg_specs = []
    seen_calls = set()
    for call in plan._wanted_aggregates:
        if call in seen_calls:
            continue
        seen_calls.add(call)
        if call.argument is None:
            agg_specs.append((call, _count_star_gather))
            continue
        name = _column_of(call.argument, binding, schema)
        if name is not None:
            family = _type_family(schema.column(name).sql_type)
            numeric_fast = (
                call.func in ("SUM", "AVG")
                and not call.distinct
                and family == "number"
            )
            agg_specs.append((call, _column_gather(
                name, call.func, call.distinct, numeric_fast,
                reduce_aggregate,
            )))
        else:
            argument_fn = compile_scalar(
                call.argument, root._scope_columns, "row",
                "columnar-aggregate",
            ).fn
            agg_specs.append((call, _row_gather(
                argument_fn, call.func, call.distinct, reduce_aggregate,
            )))
    return ColumnarPipeline(
        plan, root, specs, fallbacks,
        group_columns=group_columns, agg_specs=agg_specs,
    )
