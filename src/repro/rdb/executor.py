"""Query execution operators.

A plan is a tree of operators, each yielding *binding maps*: dicts from
table binding (alias or table name) to a stored row dict, or ``None``
for the null-padded side of a LEFT JOIN.  :class:`RowScope` adapts a
binding map to the expression layer's ``lookup`` protocol.
"""

from __future__ import annotations

import functools
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.rdb.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    Literal,
    compare_values,
)
from repro.rdb.storage import TableStore

Bindings = dict[str, dict | None]


class RowScope:
    """Expression scope over one binding map.

    ``columns_by_binding`` gives each binding's column names so that an
    unqualified column can be resolved (and ambiguity detected) even for
    null-padded LEFT JOIN rows.
    """

    def __init__(self, bindings: Bindings, columns_by_binding: dict[str, list[str]]):
        self.bindings = bindings
        self.columns_by_binding = columns_by_binding

    def lookup(self, table: str | None, column: str):
        if table is not None:
            if table not in self.columns_by_binding:
                raise QueryError(f"unknown table or alias {table!r}")
            if column not in self.columns_by_binding[table]:
                raise QueryError(f"no column {column!r} in {table!r}")
            row = self.bindings.get(table)
            return None if row is None else row[column]
        owners = [
            binding
            for binding, columns in self.columns_by_binding.items()
            if column in columns
        ]
        if not owners:
            raise QueryError(f"unknown column {column!r}")
        if len(owners) > 1:
            raise QueryError(
                f"ambiguous column {column!r} (in {', '.join(sorted(owners))})"
            )
        row = self.bindings.get(owners[0])
        return None if row is None else row[column]


class Operator:
    """Base plan operator."""

    #: planner cost-model annotations shown by EXPLAIN (None when the
    #: plan was built without estimation, e.g. naive mode)
    est_rows: float | None = None
    est_cost: float | None = None
    #: rows produced by the most recent execution (set in a finally so
    #: a generator abandoned early — LIMIT — still records its partial
    #: count); feeds adaptive cardinality feedback and EXPLAIN ANALYZE
    actual_rows: int | None = None

    def rows(self, params: dict) -> Iterator[Bindings]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line EXPLAIN label for this operator."""
        return type(self).__name__

    def children(self) -> list["Operator"]:
        return []


@dataclass
class AccessPath:
    """How a scan reaches its rows.

    ``kind`` is one of:

    - ``seq``: walk the heap;
    - ``eq``: probe an index with equality values for the leading
      ``columns`` (full-width probes hash, shorter ones walk the sorted
      prefix segment);
    - ``range``: equality on a (possibly empty) prefix plus an interval
      on the next index column;
    - ``in``: equality prefix plus an ``IN``-list on the next column,
      one probe per list element.

    All value expressions are constant at row time (literals and
    parameters), evaluated once per execution.
    """

    kind: str = "seq"
    index: object | None = None
    index_name: str | None = None
    columns: tuple[str, ...] = ()
    eq_exprs: tuple[Expr, ...] = ()
    low: Expr | None = None
    low_inclusive: bool = True
    high: Expr | None = None
    high_inclusive: bool = True
    in_exprs: tuple[Expr, ...] = field(default_factory=tuple)


_SEQ = AccessPath()


class ScanOp(Operator):
    """Table scan through an :class:`AccessPath`, re-checking any
    predicate conjuncts the planner pushed down.

    Index paths may return a *superset* of the qualifying rows (prefix
    segments include trailing NULLs, bisection is estimate-free); the
    pushed ``predicate`` re-check is what keeps every path honest, and
    a ``None`` answer from the index degrades to a heap walk.

    ``compiled_predicate``, when the plan was compiled, is a row-mode
    ``fn(row, params)`` form of ``predicate`` (see
    :mod:`repro.rdb.compile`); the scan then skips the per-row
    :class:`RowScope` allocation entirely.
    """

    #: row-mode compiled form of ``predicate`` (set by compile_plan)
    compiled_predicate = None

    def __init__(
        self,
        store: TableStore,
        binding: str,
        access: AccessPath | None = None,
        predicate: Expr | None = None,
    ):
        self.store = store
        self.binding = binding
        self.access = access or _SEQ
        self.predicate = predicate
        self._scope_columns = {binding: list(store.schema.column_names)}

    @property
    def eq_columns(self) -> tuple[str, ...]:
        """The probed index columns of an equality path (compatibility
        surface for plan introspection)."""
        return self.access.columns if self.access.kind == "eq" else ()

    def describe(self) -> str:
        name = self.store.schema.name
        if self.access.kind == "eq":
            keys = ", ".join(self.access.columns)
            return f"IndexLookup({name} AS {self.binding} ON {keys})"
        if self.access.kind == "range":
            keys = ", ".join(self.access.columns)
            return f"IndexRange({name} AS {self.binding} ON {keys})"
        if self.access.kind == "in":
            keys = ", ".join(self.access.columns)
            return f"IndexIn({name} AS {self.binding} ON {keys})"
        return f"SeqScan({name} AS {self.binding})"

    def _candidate_row_ids(self, params: dict) -> set[int] | None:
        """Row ids selected by the access path; None means scan the heap."""
        access = self.access
        if access.kind == "seq":
            return None
        scope = RowScope({}, {})
        prefix = tuple(
            expr.evaluate(scope, params) for expr in access.eq_exprs
        )
        if any(value is None for value in prefix):
            return set()  # an equality with NULL never matches
        if access.kind == "eq":
            return access.index.scan_prefix(prefix)
        if access.kind == "range":
            low = high = None
            if access.low is not None:
                low = access.low.evaluate(scope, params)
                if low is None:
                    return set()  # col > NULL is UNKNOWN everywhere
            if access.high is not None:
                high = access.high.evaluate(scope, params)
                if high is None:
                    return set()
            return access.index.scan_range(
                prefix, low, access.low_inclusive, high, access.high_inclusive
            )
        # IN-list: one probe per distinct non-NULL element
        matches: set[int] = set()
        for expr in access.in_exprs:
            value = expr.evaluate(scope, params)
            if value is None:
                continue
            found = access.index.scan_prefix(prefix + (value,))
            if found is None:
                return None
            matches |= found
        return matches

    def matching_rows(self, params: dict) -> Iterator[dict]:
        """The scan's raw row dicts (no binding map) — the substrate of
        both :meth:`rows` and the plan-level fused pipeline."""
        produced = 0
        try:
            row_ids = self._candidate_row_ids(params)
            if row_ids is None:
                # Iterate over a snapshot of ids so DML during iteration
                # is safe.
                candidates = list(self.store.rows)
            else:
                candidates = sorted(row_ids)
            lookup = self.store.rows
            predicate = self.predicate
            if predicate is None:
                for row_id in candidates:
                    row = lookup.get(row_id)
                    if row is not None:
                        produced += 1
                        yield row
                return
            compiled = self.compiled_predicate
            if compiled is not None:
                for row_id in candidates:
                    row = lookup.get(row_id)
                    if row is not None and compiled(row, params) is True:
                        produced += 1
                        yield row
                return
            for row_id in candidates:
                row = lookup.get(row_id)
                if row is None:
                    continue
                scope = RowScope({self.binding: row}, self._scope_columns)
                if predicate.evaluate(scope, params) is True:
                    produced += 1
                    yield row
        finally:
            self.actual_rows = produced

    def rows(self, params: dict) -> Iterator[Bindings]:
        binding = self.binding
        for row in self.matching_rows(params):
            yield {binding: row}


class FilterOp(Operator):
    #: bindings-mode compiled form of ``predicate`` (set by compile_plan)
    compiled_predicate = None

    def __init__(self, child: Operator, predicate: Expr,
                 columns_by_binding: dict[str, list[str]]):
        self.child = child
        self.predicate = predicate
        self.columns_by_binding = columns_by_binding

    def describe(self) -> str:
        return "Filter"

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, params: dict) -> Iterator[Bindings]:
        produced = 0
        try:
            compiled = self.compiled_predicate
            if compiled is not None:
                for bindings in self.child.rows(params):
                    if compiled(bindings, params) is True:
                        produced += 1
                        yield bindings
                return
            for bindings in self.child.rows(params):
                scope = RowScope(bindings, self.columns_by_binding)
                if self.predicate.evaluate(scope, params) is True:
                    produced += 1
                    yield bindings
        finally:
            self.actual_rows = produced


class NestedLoopJoinOp(Operator):
    """Fallback join for non-equi ON conditions.  A ``prefilter`` (the
    planner-pushed conjuncts local to the new table) shrinks the inner
    relation once per execution instead of once per outer row."""

    #: compiled forms (set by compile_plan): row-mode prefilter,
    #: bindings-mode join condition
    compiled_prefilter = None
    compiled_condition = None

    def __init__(
        self,
        left: Operator,
        store: TableStore,
        binding: str,
        condition: Expr,
        kind: str,
        columns_by_binding: dict[str, list[str]],
        prefilter: Expr | None = None,
    ):
        self.left = left
        self.store = store
        self.binding = binding
        self.condition = condition
        self.kind = kind
        self.columns_by_binding = columns_by_binding
        self.prefilter = prefilter
        self._own_columns = {binding: list(store.schema.column_names)}

    def describe(self) -> str:
        return (f"NestedLoopJoin({self.kind} {self.store.schema.name} "
                f"AS {self.binding})")

    def children(self) -> list[Operator]:
        return [self.left]

    def _inner_rows(self, params: dict) -> list[dict]:
        rows = list(self.store.rows.values())
        if self.prefilter is None:
            return rows
        kept = []
        compiled = self.compiled_prefilter
        if compiled is not None:
            for row in rows:
                if compiled(row, params) is True:
                    kept.append(row)
            return kept
        for row in rows:
            scope = RowScope({self.binding: row}, self._own_columns)
            if self.prefilter.evaluate(scope, params) is True:
                kept.append(row)
        return kept

    def rows(self, params: dict) -> Iterator[Bindings]:
        produced = 0
        try:
            right_rows = self._inner_rows(params)
            condition = self.compiled_condition
            for bindings in self.left.rows(params):
                matched = False
                for row in right_rows:
                    candidate = dict(bindings)
                    candidate[self.binding] = row
                    if condition is not None:
                        verdict = condition(candidate, params)
                    else:
                        scope = RowScope(candidate, self.columns_by_binding)
                        verdict = self.condition.evaluate(scope, params)
                    if verdict is True:
                        matched = True
                        produced += 1
                        yield candidate
                if not matched and self.kind == "left":
                    padded = dict(bindings)
                    padded[self.binding] = None
                    produced += 1
                    yield padded
        finally:
            self.actual_rows = produced


class HashJoinOp(Operator):
    """Equi-join: build a hash table on the new table's key columns and
    probe with each incoming binding map.  ``residual`` carries any extra
    non-equi conjuncts of the ON condition."""

    #: compiled forms (set by compile_plan): row-mode prefilter and
    #: build-key extractor, bindings-mode probe-key tuple and residual
    compiled_prefilter = None
    compiled_build_key = None
    compiled_probe = None
    compiled_residual = None

    def __init__(
        self,
        left: Operator,
        store: TableStore,
        binding: str,
        probe_exprs: tuple[Expr, ...],   # evaluated against incoming bindings
        build_columns: tuple[str, ...],  # columns of the new table
        residual: Expr | None,
        kind: str,
        columns_by_binding: dict[str, list[str]],
        prefilter: Expr | None = None,
    ):
        self.left = left
        self.store = store
        self.binding = binding
        self.probe_exprs = probe_exprs
        self.build_columns = build_columns
        self.residual = residual
        self.kind = kind
        self.columns_by_binding = columns_by_binding
        self.prefilter = prefilter
        self._own_columns = {binding: list(store.schema.column_names)}

    def describe(self) -> str:
        keys = ", ".join(self.build_columns)
        return (f"HashJoin({self.kind} {self.store.schema.name} "
                f"AS {self.binding} ON {keys})")

    def children(self) -> list[Operator]:
        return [self.left]

    def rows(self, params: dict) -> Iterator[Bindings]:
        produced = 0
        try:
            table: dict[tuple, list[dict]] = {}
            prefilter = self.prefilter
            compiled_prefilter = self.compiled_prefilter
            build_key = self.compiled_build_key
            for row in self.store.rows.values():
                if prefilter is not None:
                    if compiled_prefilter is not None:
                        if compiled_prefilter(row, params) is not True:
                            continue
                    else:
                        scope = RowScope({self.binding: row}, self._own_columns)
                        if prefilter.evaluate(scope, params) is not True:
                            continue
                if build_key is not None:
                    key = build_key(row)
                else:
                    key = tuple(row[c] for c in self.build_columns)
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(row)
            probe = self.compiled_probe
            residual = self.residual
            compiled_residual = self.compiled_residual
            for bindings in self.left.rows(params):
                if probe is not None:
                    key = probe(bindings, params)
                else:
                    scope = RowScope(bindings, self.columns_by_binding)
                    key = tuple(
                        expr.evaluate(scope, params) for expr in self.probe_exprs
                    )
                matched = False
                if not any(v is None for v in key):
                    for row in table.get(key, ()):
                        candidate = dict(bindings)
                        candidate[self.binding] = row
                        if residual is not None:
                            if compiled_residual is not None:
                                verdict = compiled_residual(candidate, params)
                            else:
                                residual_scope = RowScope(
                                    candidate, self.columns_by_binding
                                )
                                verdict = residual.evaluate(
                                    residual_scope, params
                                )
                            if verdict is not True:
                                continue
                        matched = True
                        produced += 1
                        yield candidate
                if not matched and self.kind == "left":
                    padded = dict(bindings)
                    padded[self.binding] = None
                    produced += 1
                    yield padded
        finally:
            self.actual_rows = produced


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def collect_aggregates(expr: Expr | None) -> list[AggregateCall]:
    """All AggregateCall nodes in ``expr`` (document order, with dups)."""
    if expr is None:
        return []
    found: list[AggregateCall] = []

    def walk(node: Expr) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return
        for attr in ("left", "right", "operand", "pattern", "low", "high",
                     "argument"):
            child = getattr(node, attr, None)
            if isinstance(child, Expr):
                walk(child)
        for attr in ("args", "options"):
            children = getattr(node, attr, None)
            if children:
                for child in children:
                    walk(child)

    walk(expr)
    return found


def substitute_aggregates(expr: Expr, values: dict[AggregateCall, object]) -> Expr:
    """Rebuild ``expr`` with every AggregateCall replaced by its computed
    value (as a Literal)."""
    if isinstance(expr, AggregateCall):
        return Literal(values[expr])
    replacements = {}
    for attr in ("left", "right", "operand", "pattern", "low", "high", "argument"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            replacements[attr] = substitute_aggregates(child, values)
    for attr in ("args", "options"):
        children = getattr(expr, attr, None)
        if children:
            replacements[attr] = tuple(
                substitute_aggregates(c, values) for c in children
            )
    if not replacements:
        return expr
    return dataclass_replace(expr, **replacements)


def dataclass_replace(node, **changes):
    import dataclasses

    return dataclasses.replace(node, **changes)


def compute_aggregate(
    call: AggregateCall,
    group: list[Bindings],
    columns_by_binding: dict[str, list[str]],
    params: dict,
    extractor=None,
):
    """Evaluate one aggregate over a group of binding maps.

    ``extractor``, when given, is the compiled bindings-mode form of
    ``call.argument`` (``fn(bindings, params)``); without it the
    argument is interpreted with a fresh :class:`RowScope` per row.
    """
    if call.argument is None:  # COUNT(*)
        return len(group)
    values = []
    if extractor is not None:
        for bindings in group:
            value = extractor(bindings, params)
            if value is not None:
                values.append(value)
    else:
        for bindings in group:
            value = call.argument.evaluate(
                RowScope(bindings, columns_by_binding), params
            )
            if value is not None:
                values.append(value)
    return reduce_aggregate(call.func, call.distinct, values)


def reduce_aggregate(func: str, distinct: bool, values: list):
    """Fold gathered non-NULL aggregate inputs into the final value.

    Shared by row execution (above) and the columnar gatherers
    (:mod:`repro.rdb.columnar`), so DISTINCT semantics and the reduce
    order cannot diverge between execution modes.
    """
    if distinct:
        seen = []
        for value in values:
            if not any(compare_values(value, s) == 0 for s in seen):
                seen.append(value)
        values = seen
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return functools.reduce(lambda a, b: a + b, values)
    if func == "AVG":
        return functools.reduce(lambda a, b: a + b, values) / len(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    raise QueryError(f"unknown aggregate {func!r}")


# ---------------------------------------------------------------------------
# Sorting helpers
# ---------------------------------------------------------------------------


@functools.total_ordering
class SortKey:
    """Comparable wrapper implementing SQL NULLS FIRST ordering."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        sign = self._compare(other)
        return sign == 0

    def __lt__(self, other):
        return self._compare(other) < 0

    def _compare(self, other: "SortKey") -> int:
        if self.value is None and other.value is None:
            return 0
        if self.value is None:
            return -1
        if other.value is None:
            return 1
        sign = compare_values(self.value, other.value)
        assert sign is not None
        return sign


class DescendingKey(SortKey):
    """A :class:`SortKey` with the comparison inverted — DESC order in a
    single lexicographic sort, without ``reverse=True`` (which cannot be
    applied per key once keys are composite).  NULLs, being "smallest"
    ascending, land last under DESC — the same placement the seed's
    per-key ``reverse=True`` passes produced."""

    __slots__ = ()

    def __lt__(self, other):
        return self._compare(other) > 0


def sort_rows_with_keys(rows_with_keys: list, order_by) -> None:
    """Sort ``(row, keys)`` pairs in place by the ORDER BY items.

    One stable pass over composite ``(SortKey | DescendingKey, ...)``
    tuples — mathematically identical to the seed's last-to-first
    stable-pass loop, but with one sort call and, crucially, *shared by
    the compiled and interpreted execution modes*, so NULL-heavy and
    mixed-type orderings cannot diverge between them: equal keys keep
    input order in both, and incomparable values raise the same
    :class:`~repro.errors.QueryError` from ``compare_values`` in both.
    """
    if not order_by:
        return
    wrappers = tuple(
        DescendingKey if item.descending else SortKey for item in order_by
    )
    if len(wrappers) == 1:
        wrap = wrappers[0]
        rows_with_keys.sort(key=lambda pair: wrap(pair[1][0]))
        return
    rows_with_keys.sort(
        key=lambda pair: tuple(
            wrap(value) for wrap, value in zip(wrappers, pair[1])
        )
    )


@dataclass
class ResultSet:
    """Materialized query result: ordered column names + dict rows."""

    columns: list[str]
    rows: list[dict]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> dict | None:
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a one-column result's first row."""
        if not self.rows:
            return None
        return self.rows[0][self.columns[0]]

    def as_tuples(self) -> list[tuple]:
        return [tuple(row[c] for c in self.columns) for row in self.rows]
