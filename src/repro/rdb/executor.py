"""Query execution operators.

A plan is a tree of operators, each yielding *binding maps*: dicts from
table binding (alias or table name) to a stored row dict, or ``None``
for the null-padded side of a LEFT JOIN.  :class:`RowScope` adapts a
binding map to the expression layer's ``lookup`` protocol.
"""

from __future__ import annotations

import functools
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import QueryError
from repro.rdb.expr import (
    AggregateCall,
    ColumnRef,
    Expr,
    Literal,
    compare_values,
)
from repro.rdb.storage import TableStore

Bindings = dict[str, dict | None]


class RowScope:
    """Expression scope over one binding map.

    ``columns_by_binding`` gives each binding's column names so that an
    unqualified column can be resolved (and ambiguity detected) even for
    null-padded LEFT JOIN rows.
    """

    def __init__(self, bindings: Bindings, columns_by_binding: dict[str, list[str]]):
        self.bindings = bindings
        self.columns_by_binding = columns_by_binding

    def lookup(self, table: str | None, column: str):
        if table is not None:
            if table not in self.columns_by_binding:
                raise QueryError(f"unknown table or alias {table!r}")
            if column not in self.columns_by_binding[table]:
                raise QueryError(f"no column {column!r} in {table!r}")
            row = self.bindings.get(table)
            return None if row is None else row[column]
        owners = [
            binding
            for binding, columns in self.columns_by_binding.items()
            if column in columns
        ]
        if not owners:
            raise QueryError(f"unknown column {column!r}")
        if len(owners) > 1:
            raise QueryError(
                f"ambiguous column {column!r} (in {', '.join(sorted(owners))})"
            )
        row = self.bindings.get(owners[0])
        return None if row is None else row[column]


class Operator:
    """Base plan operator."""

    def rows(self, params: dict) -> Iterator[Bindings]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line EXPLAIN label for this operator."""
        return type(self).__name__

    def children(self) -> list["Operator"]:
        return []


class ScanOp(Operator):
    """Full scan or, when ``eq_columns`` is set, an index-assisted
    equality lookup (``eq_exprs`` are evaluated once per query)."""

    def __init__(
        self,
        store: TableStore,
        binding: str,
        eq_columns: tuple[str, ...] = (),
        eq_exprs: tuple[Expr, ...] = (),
    ):
        self.store = store
        self.binding = binding
        self.eq_columns = eq_columns
        self.eq_exprs = eq_exprs

    def describe(self) -> str:
        if self.eq_columns:
            keys = ", ".join(self.eq_columns)
            return (f"IndexLookup({self.store.schema.name} AS {self.binding} "
                    f"ON {keys})")
        return f"SeqScan({self.store.schema.name} AS {self.binding})"

    def rows(self, params: dict) -> Iterator[Bindings]:
        if self.eq_columns:
            empty_scope = RowScope({}, {})
            key = tuple(expr.evaluate(empty_scope, params) for expr in self.eq_exprs)
            if any(v is None for v in key):
                return  # NULL never equals anything
            for row_id in self.store.find_by_key(self.eq_columns, key):
                yield {self.binding: self.store.rows[row_id]}
            return
        # Iterate over a snapshot of ids so DML during iteration is safe.
        for row_id in list(self.store.rows):
            row = self.store.rows.get(row_id)
            if row is not None:
                yield {self.binding: row}


class FilterOp(Operator):
    def __init__(self, child: Operator, predicate: Expr,
                 columns_by_binding: dict[str, list[str]]):
        self.child = child
        self.predicate = predicate
        self.columns_by_binding = columns_by_binding

    def describe(self) -> str:
        return "Filter"

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, params: dict) -> Iterator[Bindings]:
        for bindings in self.child.rows(params):
            scope = RowScope(bindings, self.columns_by_binding)
            if self.predicate.evaluate(scope, params) is True:
                yield bindings


class NestedLoopJoinOp(Operator):
    """Fallback join for non-equi ON conditions."""

    def __init__(
        self,
        left: Operator,
        store: TableStore,
        binding: str,
        condition: Expr,
        kind: str,
        columns_by_binding: dict[str, list[str]],
    ):
        self.left = left
        self.store = store
        self.binding = binding
        self.condition = condition
        self.kind = kind
        self.columns_by_binding = columns_by_binding

    def describe(self) -> str:
        return (f"NestedLoopJoin({self.kind} {self.store.schema.name} "
                f"AS {self.binding})")

    def children(self) -> list[Operator]:
        return [self.left]

    def rows(self, params: dict) -> Iterator[Bindings]:
        right_rows = list(self.store.rows.values())
        for bindings in self.left.rows(params):
            matched = False
            for row in right_rows:
                candidate = dict(bindings)
                candidate[self.binding] = row
                scope = RowScope(candidate, self.columns_by_binding)
                if self.condition.evaluate(scope, params) is True:
                    matched = True
                    yield candidate
            if not matched and self.kind == "left":
                padded = dict(bindings)
                padded[self.binding] = None
                yield padded


class HashJoinOp(Operator):
    """Equi-join: build a hash table on the new table's key columns and
    probe with each incoming binding map.  ``residual`` carries any extra
    non-equi conjuncts of the ON condition."""

    def __init__(
        self,
        left: Operator,
        store: TableStore,
        binding: str,
        probe_exprs: tuple[Expr, ...],   # evaluated against incoming bindings
        build_columns: tuple[str, ...],  # columns of the new table
        residual: Expr | None,
        kind: str,
        columns_by_binding: dict[str, list[str]],
    ):
        self.left = left
        self.store = store
        self.binding = binding
        self.probe_exprs = probe_exprs
        self.build_columns = build_columns
        self.residual = residual
        self.kind = kind
        self.columns_by_binding = columns_by_binding

    def describe(self) -> str:
        keys = ", ".join(self.build_columns)
        return (f"HashJoin({self.kind} {self.store.schema.name} "
                f"AS {self.binding} ON {keys})")

    def children(self) -> list[Operator]:
        return [self.left]

    def rows(self, params: dict) -> Iterator[Bindings]:
        table: dict[tuple, list[dict]] = {}
        for row in self.store.rows.values():
            key = tuple(row[c] for c in self.build_columns)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
        for bindings in self.left.rows(params):
            scope = RowScope(bindings, self.columns_by_binding)
            key = tuple(expr.evaluate(scope, params) for expr in self.probe_exprs)
            matched = False
            if not any(v is None for v in key):
                for row in table.get(key, ()):
                    candidate = dict(bindings)
                    candidate[self.binding] = row
                    if self.residual is not None:
                        residual_scope = RowScope(candidate, self.columns_by_binding)
                        if self.residual.evaluate(residual_scope, params) is not True:
                            continue
                    matched = True
                    yield candidate
            if not matched and self.kind == "left":
                padded = dict(bindings)
                padded[self.binding] = None
                yield padded


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def collect_aggregates(expr: Expr | None) -> list[AggregateCall]:
    """All AggregateCall nodes in ``expr`` (document order, with dups)."""
    if expr is None:
        return []
    found: list[AggregateCall] = []

    def walk(node: Expr) -> None:
        if isinstance(node, AggregateCall):
            found.append(node)
            return
        for attr in ("left", "right", "operand", "pattern", "low", "high",
                     "argument"):
            child = getattr(node, attr, None)
            if isinstance(child, Expr):
                walk(child)
        for attr in ("args", "options"):
            children = getattr(node, attr, None)
            if children:
                for child in children:
                    walk(child)

    walk(expr)
    return found


def substitute_aggregates(expr: Expr, values: dict[AggregateCall, object]) -> Expr:
    """Rebuild ``expr`` with every AggregateCall replaced by its computed
    value (as a Literal)."""
    if isinstance(expr, AggregateCall):
        return Literal(values[expr])
    replacements = {}
    for attr in ("left", "right", "operand", "pattern", "low", "high", "argument"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            replacements[attr] = substitute_aggregates(child, values)
    for attr in ("args", "options"):
        children = getattr(expr, attr, None)
        if children:
            replacements[attr] = tuple(
                substitute_aggregates(c, values) for c in children
            )
    if not replacements:
        return expr
    return dataclass_replace(expr, **replacements)


def dataclass_replace(node, **changes):
    import dataclasses

    return dataclasses.replace(node, **changes)


def compute_aggregate(
    call: AggregateCall,
    group: list[Bindings],
    columns_by_binding: dict[str, list[str]],
    params: dict,
):
    if call.argument is None:  # COUNT(*)
        return len(group)
    values = []
    for bindings in group:
        value = call.argument.evaluate(
            RowScope(bindings, columns_by_binding), params
        )
        if value is not None:
            values.append(value)
    if call.distinct:
        seen = []
        for value in values:
            if not any(compare_values(value, s) == 0 for s in seen):
                seen.append(value)
        values = seen
    func = call.func
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return functools.reduce(lambda a, b: a + b, values)
    if func == "AVG":
        return functools.reduce(lambda a, b: a + b, values) / len(values)
    if func == "MIN":
        return min(values)
    if func == "MAX":
        return max(values)
    raise QueryError(f"unknown aggregate {func!r}")


# ---------------------------------------------------------------------------
# Sorting helpers
# ---------------------------------------------------------------------------


@functools.total_ordering
class SortKey:
    """Comparable wrapper implementing SQL NULLS FIRST ordering."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        sign = self._compare(other)
        return sign == 0

    def __lt__(self, other):
        return self._compare(other) < 0

    def _compare(self, other: "SortKey") -> int:
        if self.value is None and other.value is None:
            return 0
        if self.value is None:
            return -1
        if other.value is None:
            return 1
        sign = compare_values(self.value, other.value)
        assert sign is not None
        return sign


@dataclass
class ResultSet:
    """Materialized query result: ordered column names + dict rows."""

    columns: list[str]
    rows: list[dict]

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> dict | None:
        return self.rows[0] if self.rows else None

    def scalar(self):
        """The single value of a one-column result's first row."""
        if not self.rows:
            return None
        return self.rows[0][self.columns[0]]

    def as_tuples(self) -> list[tuple]:
        return [tuple(row[c] for c in self.columns) for row in self.rows]
