"""SELECT planning and evaluation.

:class:`SelectPlan` compiles a parsed SELECT into an operator tree once;
``execute(params)`` then runs it against current table contents.  Plans
are reusable across requests — the generic unit services compile each
descriptor's query a single time and re-execute it per request.

Planning is cost-based (:mod:`repro.rdb.cost`):

- the WHERE clause and inner-join ON conditions are split into
  conjuncts, each resolved to the set of table bindings it references;
- single-table conjuncts are pushed down: onto the base scan (where
  they also select an access path — sequential scan, exact index
  lookup, sorted range scan, or ``IN``-list probe, whichever the cost
  model prices cheapest) and onto join build sides as prefilters;
- inner joins are greedily reordered by estimated cardinality
  (smallest filtered table first, then the cheapest connected
  extension), falling back to the declared order when the join graph
  has no connecting equi-condition;
- every pushed conjunct is re-checked where it lands, so index paths
  may safely return supersets and estimation errors can never change
  results — only plan shape;
- LEFT JOIN queries keep the declared order and only take the
  semantically safe pushdowns (base-scan conjuncts, build-side
  prefilters from conjuncts local to the joined table).

``optimize=False`` rebuilds the seed's naive plan — full scans except
exact-equality index matches, declared join order, one final WHERE
filter — which E14 uses as its baseline.

Two optional inputs refine cost-based planning without touching
semantics: ``feedback`` (a :class:`repro.rdb.adaptive.SelectivityMemory`)
lets every selectivity estimate consult observed execution counts before
statistics, and ``features`` (:class:`PlannerFeatures`) switches
individual planner decisions off — the plan-space scanner uses it to
measure what each decision is worth and where the cost model lies.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import QueryError
from repro.rdb import cost
from repro.rdb.compile import compile_plan
from repro.rdb.executor import (
    AccessPath,
    Bindings,
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ResultSet,
    RowScope,
    ScanOp,
    collect_aggregates,
    compute_aggregate,
    sort_rows_with_keys,
    substitute_aggregates,
)
from repro.rdb.expr import (
    AggregateCall,
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
)
from repro.rdb.columnar import build_columnar_pipeline
from repro.rdb.sqlparser import Select
from repro.rdb.storage import TableStore
from repro.util import unique_name


def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _and_all(parts: list[Expr]) -> Expr | None:
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = And(combined, part)
    return combined


def _constant(expr: Expr) -> bool:
    """Constant at plan scope: literals, parameters, and compositions
    thereof — anything without a column reference."""
    return not expr.column_refs()


@dataclass(frozen=True)
class PlannerFeatures:
    """Individually defeatable planner decisions.

    All on by default.  Turning one off never changes results (every
    conjunct is still checked somewhere); it changes plan shape, which
    is exactly what the plan-space scanner measures.
    """

    #: greedy cardinality-driven join reordering (off: declared order)
    join_reorder: bool = True
    #: index access-path selection (off: every scan walks the heap)
    access_paths: bool = True
    #: single-table predicate pushdown from WHERE/ON onto scans and
    #: build-side prefilters (off: one final filter; LEFT-join ON
    #: prefilters keep their placement — that is semantics, not tuning)
    pushdown: bool = True


DEFAULT_FEATURES = PlannerFeatures()


class SelectPlan:
    def __init__(self, select: Select, stores: Mapping[str, TableStore],
                 optimize: bool = True, compiled: bool | None = None,
                 columnar: bool | None = None, feedback=None,
                 features: PlannerFeatures | None = None):
        self.select = select
        self.stores = stores
        self.optimize = optimize
        #: adaptive selectivity memory consulted by every cost estimate;
        #: the naive seed plan stays feedback-blind so it remains a
        #: stable byte-identity oracle
        self.feedback = feedback if optimize else None
        self.features = features if features is not None else DEFAULT_FEATURES
        #: the caller's layout/compile requests, kept for access-path
        #: costing (a seq scan that will run columnar is priced as such)
        self._columnar_hint = columnar
        self._compiled_hint = compiled
        #: adaptive feedback records this plan's executions: cost-based
        #: plans without LIMIT (abandoned generators under-count actuals)
        self.feedback_eligible = optimize and select.limit is None
        self.columns_by_binding: dict[str, list[str]] = {}
        self._binding_order: list[str] = []
        self._table_by_binding: dict[str, str] = {}
        self._register_binding(select.source.binding, select.source.table)
        for join in select.joins:
            self._register_binding(join.table.binding, join.table.table)
        #: the real table names this plan reads — scoped plan-cache
        #: invalidation drops exactly the plans whose set intersects a
        #: DDL/ANALYZE statement's target
        self.tables = frozenset(self._table_by_binding.values())
        self.needed_columns = self._compute_needed_columns()
        if optimize:
            self.root = self._build_tree()
        else:
            self.root = self._build_tree_naive()
        self.output_columns, self._projection = self._build_projection()
        #: grouped execution computed once: GROUP BY or any aggregate
        self.grouped = bool(select.group_by) or self._has_aggregates()
        self._wanted_aggregates = self._collect_wanted_aggregates()
        # Compiled execution (repro.rdb.compile).  ``compiled=None``
        # follows ``optimize``: the naive seed plan stays interpreted so
        # ``prepare(optimize=False)`` remains a byte-identity oracle.
        self.compiled_emit = None
        self.compiled_row_emit = None
        self.compiled_group_key = None
        self.compiled_agg_args: dict[AggregateCall, object] = {}
        self.compile_stats: dict[str, int] | None = None
        self.compile_seconds = 0.0
        self.exec_mode = "interpreted"
        #: batch pipeline (repro.rdb.columnar) when the cost model picks
        #: column-major execution for this plan; None runs row-at-a-time
        self.columnar_pipeline = None
        if optimize if compiled is None else compiled:
            started = time.perf_counter()
            self.compile_stats = compile_plan(self)
            self.exec_mode = (
                "compiled" if self.compile_stats["interpreted"] == 0
                else "mixed"
            )
            # Layout choice: ``columnar=True`` forces the batch path
            # (tests/oracles), ``False`` pins row execution, ``None``
            # lets the cost model decide — columnar pays off on wide
            # sequential scans, never on index point lookups (which
            # keep access.kind != "seq" and are skipped here).  The
            # decision is made once and cached with the plan.
            want = columnar
            if want is None and isinstance(self.root, ScanOp) \
                    and self.root.access.kind == "seq":
                live = len(self.root.store.rows) or 10
                want = cost.prefer_columnar(live)
            if want:
                self.columnar_pipeline = build_columnar_pipeline(self)
                if self.columnar_pipeline is not None:
                    self.exec_mode = "columnar"
            self.compile_seconds = time.perf_counter() - started

    def _collect_wanted_aggregates(self) -> list[AggregateCall]:
        """Every aggregate any clause needs, in evaluation order."""
        wanted: list[AggregateCall] = []
        for item in self.select.items:
            if item.expr is not None:
                wanted.extend(collect_aggregates(item.expr))
        wanted.extend(collect_aggregates(self.select.having))
        for order_item in self.select.order_by:
            wanted.extend(collect_aggregates(order_item.expr))
        return wanted

    def _store(self, table: str) -> TableStore:
        if table not in self.stores:
            raise QueryError(f"unknown table {table!r}")
        return self.stores[table]

    def _register_binding(self, binding: str, table: str) -> None:
        if binding in self.columns_by_binding:
            raise QueryError(f"duplicate table binding {binding!r}")
        store = self._store(table)
        self.columns_by_binding[binding] = list(store.schema.column_names)
        self._binding_order.append(binding)
        self._table_by_binding[binding] = table

    def _binding_store(self, binding: str) -> TableStore:
        return self.stores[self._table_by_binding[binding]]

    # -- conjunct analysis ---------------------------------------------------

    def _conjunct_bindings(self, conjunct: Expr) -> frozenset[str] | None:
        """The bindings ``conjunct`` references, or None when a reference
        is unknown or ambiguous — such conjuncts stay in the final filter
        so execution raises the same error the evaluator always did."""
        bindings: set[str] = set()
        for ref in conjunct.column_refs():
            if ref.table is not None:
                columns = self.columns_by_binding.get(ref.table)
                if columns is None or ref.column not in columns:
                    return None
                bindings.add(ref.table)
            else:
                owners = [
                    binding
                    for binding, columns in self.columns_by_binding.items()
                    if ref.column in columns
                ]
                if len(owners) != 1:
                    return None
                bindings.add(owners[0])
        return frozenset(bindings)

    def _column_binding(self, ref: ColumnRef) -> str | None:
        if ref.table is not None:
            return ref.table if ref.table in self.columns_by_binding else None
        owners = [
            binding
            for binding, columns in self.columns_by_binding.items()
            if ref.column in columns
        ]
        return owners[0] if len(owners) == 1 else None

    def _equi_split(
        self, conjunct: Expr, new_binding: str, available: set[str]
    ) -> tuple[Expr, str] | None:
        """Match ``new.col = <expr over available bindings>`` (either
        side) and return (probe expr, build column)."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        for col_side, probe_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ColumnRef):
                continue
            if self._column_binding(col_side) != new_binding:
                continue
            probe_bindings = self._conjunct_bindings(probe_side)
            if probe_bindings is None or not probe_bindings:
                continue
            if probe_bindings <= available:
                return probe_side, col_side.column
        return None

    # -- access-path selection ------------------------------------------------

    def _local_equalities(self, store: TableStore,
                          conjuncts: list[Expr]) -> dict[str, Expr]:
        """column -> constant expression, from ``col = const`` conjuncts."""
        found: dict[str, Expr] = {}
        for conjunct in conjuncts:
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for col_side, const_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(col_side, ColumnRef)
                    and store.schema.has_column(col_side.column)
                    and _constant(const_side)
                ):
                    found.setdefault(col_side.column, const_side)
                    break
        return found

    def _local_range(self, column: str, conjuncts: list[Expr]):
        """(low, low_inclusive, high, high_inclusive) bounds on
        ``column`` from range conjuncts with constant bounds."""
        low = high = None
        low_inclusive = high_inclusive = True
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, Between)
                and not conjunct.negated
                and isinstance(conjunct.operand, ColumnRef)
                and conjunct.operand.column == column
                and _constant(conjunct.low)
                and _constant(conjunct.high)
            ):
                if low is None:
                    low, low_inclusive = conjunct.low, True
                if high is None:
                    high, high_inclusive = conjunct.high, True
                continue
            if not isinstance(conjunct, Comparison):
                continue
            if conjunct.op not in ("<", "<=", ">", ">="):
                continue
            left, right = conjunct.left, conjunct.right
            if (isinstance(left, ColumnRef) and left.column == column
                    and _constant(right)):
                if conjunct.op in (">", ">=") and low is None:
                    low, low_inclusive = right, conjunct.op == ">="
                elif conjunct.op in ("<", "<=") and high is None:
                    high, high_inclusive = right, conjunct.op == "<="
            elif (isinstance(right, ColumnRef) and right.column == column
                    and _constant(left)):
                # const OP col: flip the operator
                if conjunct.op in ("<", "<=") and low is None:
                    low, low_inclusive = left, conjunct.op == "<="
                elif conjunct.op in (">", ">=") and high is None:
                    high, high_inclusive = left, conjunct.op == ">="
        return low, low_inclusive, high, high_inclusive

    def _local_in_list(self, column: str,
                       conjuncts: list[Expr]) -> tuple[Expr, ...] | None:
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, InList)
                and not conjunct.negated
                and isinstance(conjunct.operand, ColumnRef)
                and conjunct.operand.column == column
                and all(_constant(option) for option in conjunct.options)
            ):
                return conjunct.options
        return None

    def _columnar_candidate(self) -> bool:
        """Whether a seq scan in this plan could run through the batch
        kernels — single-binding plans with compilation on and columnar
        not pinned off (mirrors the layout decision in ``__init__``)."""
        if len(self._binding_order) != 1 or self._columnar_hint is False:
            return False
        compiled = self._compiled_hint
        return bool(self.optimize if compiled is None else compiled)

    def _choose_access_path(
        self, store: TableStore, conjuncts: list[Expr]
    ) -> tuple[AccessPath, float, float]:
        """The cheapest access path for a scan with ``conjuncts`` pushed
        onto it; returns (path, estimated output rows, estimated cost).

        An empty (typically not-yet-seeded) table is costed as if it had
        a few rows, so a plan cached before the bulk load still picks
        the index it will want afterwards."""
        feedback = self.feedback
        live = len(store.rows) or 10
        output = live * cost.conjuncts_selectivity(store, conjuncts, feedback)
        best_path = AccessPath()
        best_cost = float(live)
        if self._columnar_candidate():
            # A seq scan here would run through the columnar kernels, so
            # price it as such: this is the lever that lets a learned
            # low-selectivity correction beat an index probe that must
            # still touch most of the table row-at-a-time.
            best_cost = min(best_cost, cost.columnar_scan_cost(live))
        if not self.features.access_paths:
            return best_path, output, best_cost
        equalities = self._local_equalities(store, conjuncts)
        for name, index in store.iter_indexes():
            prefix_exprs: list[Expr] = []
            prefix_selectivity = 1.0
            for column in index.columns:
                expr = equalities.get(column)
                if expr is None:
                    break
                prefix_exprs.append(expr)
                prefix_selectivity *= cost.equality_selectivity(
                    store, column, feedback
                )
            width = len(prefix_exprs)
            if width:
                matching = live * prefix_selectivity
                candidate_cost = cost.INDEX_PROBE_COST + matching
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_path = AccessPath(
                        kind="eq", index=index, index_name=name,
                        columns=index.columns[:width],
                        eq_exprs=tuple(prefix_exprs),
                    )
            if width >= len(index.columns):
                continue
            next_column = index.columns[width]
            low, low_inc, high, high_inc = self._local_range(
                next_column, conjuncts
            )
            if low is not None or high is not None:
                range_selectivity = cost.range_selectivity(
                    store, next_column,
                    low.value if isinstance(low, Literal) else None,
                    high.value if isinstance(high, Literal) else None,
                    low_inc, high_inc, feedback=feedback,
                )
                matching = live * prefix_selectivity * range_selectivity
                candidate_cost = cost.INDEX_PROBE_COST + matching
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_path = AccessPath(
                        kind="range", index=index, index_name=name,
                        columns=index.columns[: width + 1],
                        eq_exprs=tuple(prefix_exprs),
                        low=low, low_inclusive=low_inc,
                        high=high, high_inclusive=high_inc,
                    )
            in_options = self._local_in_list(next_column, conjuncts)
            if in_options:
                per_value = cost.equality_selectivity(
                    store, next_column, feedback
                )
                selectivity = cost.clamp(
                    prefix_selectivity * per_value * len(in_options)
                )
                matching = live * selectivity
                candidate_cost = (
                    len(in_options) * cost.INDEX_PROBE_COST + matching
                )
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_path = AccessPath(
                        kind="in", index=index, index_name=name,
                        columns=index.columns[: width + 1],
                        eq_exprs=tuple(prefix_exprs),
                        in_exprs=tuple(in_options),
                    )
        return best_path, output, best_cost

    # -- operator tree (cost-based) -------------------------------------------

    def _build_tree(self) -> Operator:
        select = self.select
        if any(join.kind != "inner" for join in select.joins):
            return self._build_tree_mixed()
        return self._build_tree_inner()

    def _classify(self, conjuncts: list[Expr]):
        """Split conjuncts into per-binding local lists, multi-binding
        pairs, and unresolvable leftovers."""
        local: dict[str, list[Expr]] = {b: [] for b in self._binding_order}
        multi: list[tuple[Expr, frozenset[str]]] = []
        leftover: list[Expr] = []
        for conjunct in conjuncts:
            bindings = self._conjunct_bindings(conjunct)
            if bindings is None:
                leftover.append(conjunct)
            elif len(bindings) == 1:
                local[next(iter(bindings))].append(conjunct)
            elif len(bindings) == 0:
                # parameter-only conjunct: evaluate it at the base scan
                local[self._binding_order[0]].append(conjunct)
            else:
                multi.append((conjunct, bindings))
        return local, multi, leftover

    def _local_estimates(self, local: dict[str, list[Expr]]) -> dict[str, float]:
        estimates = {}
        for binding in self._binding_order:
            store = self._binding_store(binding)
            estimates[binding] = len(store.rows) * cost.conjuncts_selectivity(
                store, local[binding], self.feedback
            )
        return estimates

    def _greedy_order(
        self,
        local: dict[str, list[Expr]],
        multi: list[tuple[Expr, frozenset[str]]],
    ) -> list[str] | None:
        """Selinger-lite greedy join order: start from the smallest
        filtered table, repeatedly add the equi-connected table with the
        cheapest estimated join output.  None when the graph disconnects
        (then the declared order stands)."""
        estimates = self._local_estimates(local)
        position = {b: i for i, b in enumerate(self._binding_order)}
        start = min(self._binding_order,
                    key=lambda b: (estimates[b], position[b]))
        order = [start]
        joined = {start}
        cardinality = max(estimates[start], cost.clamp(0.0))
        remaining = [b for b in self._binding_order if b != start]
        while remaining:
            best = None
            for candidate in remaining:
                build_columns = []
                for conjunct, bindings in multi:
                    if candidate not in bindings:
                        continue
                    if not bindings <= joined | {candidate}:
                        continue
                    pair = self._equi_split(conjunct, candidate, joined)
                    if pair is not None:
                        build_columns.append(pair[1])
                if not build_columns:
                    continue
                store = self._binding_store(candidate)
                distinct = cost.join_distinct(
                    store, tuple(build_columns), self.feedback
                )
                output = cardinality * estimates[candidate] / max(distinct, 1.0)
                key = (output, position[candidate])
                if best is None or key < best[0]:
                    best = (key, candidate, output)
            if best is None:
                return None  # disconnected: keep the declared order
            _, chosen, output = best
            order.append(chosen)
            joined.add(chosen)
            cardinality = output
            remaining.remove(chosen)
        return order

    def _build_tree_inner(self) -> Operator:
        select = self.select
        pool = _conjuncts(select.where)
        for join in select.joins:
            pool.extend(_conjuncts(join.condition))
        local, multi, leftover = self._classify(pool)
        if not self.features.pushdown:
            # Single-table conjuncts stay in the final filter instead of
            # riding down to scans and build sides (parameter-only ones
            # included — inner-join semantics make the move safe).
            for binding in self._binding_order:
                leftover.extend(local[binding])
                local[binding] = []

        order = self._binding_order
        if len(order) > 1 and self.features.join_reorder:
            greedy = self._greedy_order(local, multi)
            if greedy is not None:
                order = greedy

        base = order[0]
        base_store = self._binding_store(base)
        base_conjuncts = local[base]
        if base != self._binding_order[0]:
            # parameter-only conjuncts were filed under the declared
            # base; keep them with whatever scan now runs first
            moved = [c for c in local[self._binding_order[0]]
                     if not c.column_refs()]
            base_conjuncts = base_conjuncts + moved
            local[self._binding_order[0]] = [
                c for c in local[self._binding_order[0]] if c.column_refs()
            ]
        access, est_rows, est_cost = self._choose_access_path(
            base_store, base_conjuncts
        )
        root: Operator = ScanOp(
            base_store, base, access, _and_all(base_conjuncts)
        )
        root.est_rows, root.est_cost = est_rows, est_cost

        available = {base}
        cardinality, total_cost = est_rows, est_cost
        unplaced = list(multi)
        for binding in order[1:]:
            store = self._binding_store(binding)
            here: list[tuple[Expr, frozenset[str]]] = []
            rest_pool: list[tuple[Expr, frozenset[str]]] = []
            for conjunct, bindings in unplaced:
                if bindings <= available | {binding}:
                    here.append((conjunct, bindings))
                else:
                    rest_pool.append((conjunct, bindings))
            unplaced = rest_pool
            probe_exprs: list[Expr] = []
            build_columns: list[str] = []
            residual: list[Expr] = []
            for conjunct, _bindings in here:
                pair = self._equi_split(conjunct, binding, available)
                if pair is not None:
                    probe_exprs.append(pair[0])
                    build_columns.append(pair[1])
                else:
                    residual.append(conjunct)
            prefilter = _and_all(local[binding])
            build_est = len(store.rows) * cost.conjuncts_selectivity(
                store, local[binding], self.feedback
            )
            residual_selectivity = cost.conjuncts_selectivity(
                store, residual, self.feedback
            )
            if probe_exprs:
                root = HashJoinOp(
                    root, store, binding, tuple(probe_exprs),
                    tuple(build_columns), _and_all(residual), "inner",
                    self.columns_by_binding, prefilter,
                )
                distinct = cost.join_distinct(
                    store, tuple(build_columns), self.feedback
                )
                output = (cardinality * build_est / max(distinct, 1.0)
                          * residual_selectivity)
                step_cost = (
                    len(store.rows) * cost.HASH_BUILD_COST
                    + cardinality * cost.HASH_PROBE_COST + output
                )
            else:
                condition = _and_all(residual) or Literal(True)
                root = NestedLoopJoinOp(
                    root, store, binding, condition, "inner",
                    self.columns_by_binding, prefilter,
                )
                output = cardinality * build_est * residual_selectivity
                step_cost = len(store.rows) + cardinality * build_est
            total_cost += step_cost
            cardinality = output
            root.est_rows, root.est_cost = cardinality, total_cost
            available.add(binding)

        final = [conjunct for conjunct, _ in unplaced] + leftover
        if final:
            root = FilterOp(root, _and_all(final), self.columns_by_binding)
            root.est_rows, root.est_cost = cardinality, total_cost
        return root

    def _build_tree_mixed(self) -> Operator:
        """Declared-order plan for queries with LEFT joins: only the
        provably safe pushdowns are taken.  A WHERE conjunct touching a
        left-joined binding must see the null-padded row, so it stays in
        the final filter; a LEFT join's ON conjuncts never leave the
        join except as build-side prefilters (they decide matching, not
        row survival)."""
        select = self.select
        left_bindings = {
            join.table.binding for join in select.joins if join.kind == "left"
        }
        local, multi, leftover = self._classify(_conjuncts(select.where))
        final: list[Expr] = list(leftover)
        for binding in left_bindings:
            final.extend(local.pop(binding, []))
            local[binding] = []
        if not self.features.pushdown:
            # WHERE conjuncts stay in the final filter; LEFT-join ON
            # prefilters below keep their placement (semantics, not a
            # tunable decision).
            for binding in self._binding_order:
                final.extend(local[binding])
                local[binding] = []
        placed_multi: list[tuple[Expr, frozenset[str]]] = []
        for conjunct, bindings in multi:
            if bindings & left_bindings:
                final.append(conjunct)
            else:
                placed_multi.append((conjunct, bindings))

        base = self._binding_order[0]
        base_store = self._binding_store(base)
        access, est_rows, est_cost = self._choose_access_path(
            base_store, local[base]
        )
        root: Operator = ScanOp(base_store, base, access, _and_all(local[base]))
        root.est_rows, root.est_cost = est_rows, est_cost

        available = {base}
        cardinality, total_cost = est_rows, est_cost
        unplaced = list(placed_multi)
        for join in select.joins:
            binding = join.table.binding
            store = self._binding_store(binding)
            probe_exprs: list[Expr] = []
            build_columns: list[str] = []
            residual: list[Expr] = []
            prefilter_parts: list[Expr] = []
            for conjunct in _conjuncts(join.condition):
                bindings = self._conjunct_bindings(conjunct)
                if bindings == frozenset({binding}):
                    prefilter_parts.append(conjunct)
                    continue
                pair = self._equi_split(conjunct, binding, available)
                if pair is not None:
                    probe_exprs.append(pair[0])
                    build_columns.append(pair[1])
                else:
                    residual.append(conjunct)
            if join.kind == "inner":
                # WHERE conjuncts local to this inner table prefilter the
                # build side; covered multi-binding WHERE conjuncts join
                # the residual (inner residual == filter semantics)
                prefilter_parts.extend(local[binding])
                still: list[tuple[Expr, frozenset[str]]] = []
                for conjunct, bindings in unplaced:
                    if bindings <= available | {binding}:
                        residual.append(conjunct)
                    else:
                        still.append((conjunct, bindings))
                unplaced = still
            prefilter = _and_all(prefilter_parts)
            build_est = len(store.rows) * cost.conjuncts_selectivity(
                store, prefilter_parts, self.feedback
            )
            if probe_exprs:
                root = HashJoinOp(
                    root, store, binding, tuple(probe_exprs),
                    tuple(build_columns), _and_all(residual), join.kind,
                    self.columns_by_binding, prefilter,
                )
                distinct = cost.join_distinct(
                    store, tuple(build_columns), self.feedback
                )
                output = cardinality * build_est / max(distinct, 1.0)
                step_cost = (
                    len(store.rows) * cost.HASH_BUILD_COST
                    + cardinality * cost.HASH_PROBE_COST + output
                )
            else:
                condition = _and_all(residual) or Literal(True)
                root = NestedLoopJoinOp(
                    root, store, binding, condition, join.kind,
                    self.columns_by_binding, prefilter,
                )
                output = cardinality * build_est
                step_cost = len(store.rows) + cardinality * build_est
            if join.kind == "left":
                output = max(output, cardinality)  # left joins keep every row
            total_cost += step_cost
            cardinality = output
            root.est_rows, root.est_cost = cardinality, total_cost
            available.add(binding)

        final.extend(conjunct for conjunct, _ in unplaced)
        if final:
            root = FilterOp(root, _and_all(final), self.columns_by_binding)
            root.est_rows, root.est_cost = cardinality, total_cost
        return root

    # -- operator tree (naive baseline) ---------------------------------------

    def _build_tree_naive(self) -> Operator:
        """The pre-cost-model plan shape: exact-equality index lookups
        only, declared join order, no pushdown, one final WHERE filter."""
        select = self.select
        source_binding = select.source.binding
        source_store = self._store(select.source.table)

        eq_columns: list[str] = []
        eq_exprs: list[Expr] = []
        if not select.joins:
            for conjunct in _conjuncts(select.where):
                pair = self._constant_equality(
                    conjunct, source_binding, source_store
                )
                if pair is not None:
                    eq_columns.append(pair[0])
                    eq_exprs.append(pair[1])
        # Only use the lookup path when an index matches exactly.
        root: Operator
        use_lookup: tuple[str, ...] = ()
        for width in range(len(eq_columns), 0, -1):
            candidate = tuple(eq_columns[:width])
            if source_store.index_on(candidate) is not None:
                use_lookup = candidate
                break
        if use_lookup:
            index = source_store.index_on(use_lookup)
            root = ScanOp(
                source_store,
                source_binding,
                AccessPath(
                    kind="eq", index=index, columns=use_lookup,
                    eq_exprs=tuple(eq_exprs[: len(use_lookup)]),
                ),
            )
        else:
            root = ScanOp(source_store, source_binding)

        joined = {source_binding}
        for join in select.joins:
            store = self._store(join.table.table)
            binding = join.table.binding
            probe_exprs: list[Expr] = []
            build_columns: list[str] = []
            residual: list[Expr] = []
            for conjunct in _conjuncts(join.condition):
                pair = self._equi_condition(conjunct, binding, joined)
                if pair is not None:
                    probe_exprs.append(pair[0])
                    build_columns.append(pair[1])
                else:
                    residual.append(conjunct)
            if probe_exprs:
                root = HashJoinOp(
                    root, store, binding, tuple(probe_exprs),
                    tuple(build_columns), _and_all(residual), join.kind,
                    self.columns_by_binding,
                )
            else:
                root = NestedLoopJoinOp(
                    root, store, binding, join.condition, join.kind,
                    self.columns_by_binding,
                )
            joined.add(binding)

        if select.where is not None:
            root = FilterOp(root, select.where, self.columns_by_binding)
        return root

    def _constant_equality(
        self, conjunct: Expr, binding: str, store: TableStore
    ) -> tuple[str, Expr] | None:
        """Match ``binding.col = <constant expr>`` (either side)."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        for col_side, const_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ColumnRef):
                continue
            if col_side.table not in (None, binding):
                continue
            if not store.schema.has_column(col_side.column):
                continue
            if const_side.column_refs():
                continue
            return col_side.column, const_side
        return None

    def _equi_condition(
        self, conjunct: Expr, new_binding: str, joined: set[str]
    ) -> tuple[Expr, str] | None:
        """Match ``new.col = old.col`` and return (probe expr, build column)."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        if left.table is None or right.table is None:
            return None
        if left.table == new_binding and right.table in joined:
            return right, left.column
        if right.table == new_binding and left.table in joined:
            return left, right.column
        return None

    # -- projection pushdown ---------------------------------------------------

    def _compute_needed_columns(self) -> dict[str, tuple[str, ...]]:
        """Per binding, the columns any clause of this query can touch.

        Rows flow through the tree by reference, so narrowing them would
        cost a copy; the value of the analysis is (a) EXPLAIN shows what
        each scan actually feeds upward and (b) callers shipping rows
        across a wire (the service tier's row shaping) know the minimal
        column set.
        """
        select = self.select
        needed: dict[str, set[str]] = {b: set() for b in self._binding_order}

        def visit(expr: Expr | None) -> None:
            if expr is None:
                return
            for ref in expr.column_refs():
                binding = self._column_binding(ref)
                if binding is not None:
                    needed[binding].add(ref.column)

        for item in select.items:
            if item.is_star:
                bindings = (
                    [item.star_table] if item.star_table else self._binding_order
                )
                for binding in bindings:
                    if binding in needed:
                        needed[binding].update(self.columns_by_binding[binding])
                continue
            visit(item.expr)
        visit(select.where)
        for join in select.joins:
            visit(join.condition)
        for expr in select.group_by:
            visit(expr)
        visit(select.having)
        for item in select.order_by:
            visit(item.expr)
        return {
            binding: tuple(
                column for column in self.columns_by_binding[binding]
                if column in columns
            )
            for binding, columns in needed.items()
        }

    # -- projection -----------------------------------------------------------

    def _build_projection(self) -> tuple[list[str], list[tuple[str, Expr | None, str | None]]]:
        """Returns output column names plus per-item evaluation specs.

        Each spec is ``(output_name, expr, star_binding_column)``:
        exactly one of ``expr`` / star source is set.
        """
        names: list[str] = []
        specs: list[tuple[str, Expr | None, tuple[str, str] | None]] = []
        taken: set[str] = set()

        def claim(base: str) -> str:
            return unique_name(base, taken)

        for position, item in enumerate(self.select.items):
            if item.is_star:
                bindings = (
                    [item.star_table] if item.star_table else self._binding_order
                )
                for binding in bindings:
                    if binding not in self.columns_by_binding:
                        raise QueryError(f"unknown table or alias {binding!r}")
                    for column in self.columns_by_binding[binding]:
                        name = claim(
                            column if column not in taken else f"{binding}.{column}"
                        )
                        specs.append((name, None, (binding, column)))
                        names.append(name)
                continue
            if item.alias:
                base = item.alias
            elif isinstance(item.expr, ColumnRef):
                base = item.expr.column
            else:
                base = f"col{position + 1}"
            name = claim(base)
            specs.append((name, item.expr, None))
            names.append(name)
        return names, specs

    # -- EXPLAIN ---------------------------------------------------------------

    def access_summary(self) -> str:
        """A compact rendition of the chosen access paths, for trace
        spans and the slow-query log: one ``kind:table(columns)`` item
        per scan, e.g. ``eq:issue(oid)+seq:paper``.  Computed once and
        cached on the plan (plans are shared via the plan cache, so the
        cost amortizes to nothing)."""
        summary = getattr(self, "_access_summary", None)
        if summary is None:
            parts = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                if isinstance(node, ScanOp):
                    item = f"{node.access.kind}:{node.store.schema.name}"
                    if node.access.columns:
                        item += f"({','.join(node.access.columns)})"
                    parts.append(item)
                stack.extend(node.children())
            summary = "+".join(sorted(parts)) or "const"
            self._access_summary = summary
        return summary

    def explain(self, analyze: bool = False) -> str:
        """A textual plan tree: the executor's post-processing steps
        (limit/sort/distinct/grouping) wrap the operator tree, which is
        printed root-first with children indented below.  Cost-based
        plans annotate each operator with estimated rows/cost and each
        scan with the columns the query needs from it.

        ``analyze=True`` adds each operator's ``actual=`` row count from
        the most recent execution and, where an estimate exists, the
        ``q=`` error factor (``max(actual/est, est/actual)``) — the
        caller is expected to have executed the plan first."""
        select = self.select
        lines: list[str] = []
        post = []
        if select.limit is not None or select.offset:
            post.append(f"Limit(limit={select.limit}, offset={select.offset})")
        if select.order_by:
            post.append(f"Sort({len(select.order_by)} keys)")
        if select.distinct:
            post.append("Distinct")
        if select.group_by or self._has_aggregates():
            post.append("GroupAggregate")
        for depth, label in enumerate(post):
            lines.append("  " * depth + label)
        self._explain_node(self.root, len(post), lines, root=True,
                           analyze=analyze)
        return "\n".join(lines)

    def _explain_node(self, node, depth: int, lines: list[str],
                      root: bool = False, analyze: bool = False) -> None:
        label = node.describe()
        annotations = []
        if isinstance(node, ScanOp):
            columns = self.needed_columns.get(node.binding)
            if columns is not None and self.optimize:
                annotations.append(f"cols={','.join(columns) or '-'}")
        if node.est_rows is not None:
            annotations.append(f"rows~{node.est_rows:.1f}")
            annotations.append(f"cost~{node.est_cost:.1f}")
        if analyze and node.actual_rows is not None:
            annotations.append(f"actual={node.actual_rows}")
            if node.est_rows is not None:
                est = max(float(node.est_rows), 1.0)
                act = max(float(node.actual_rows), 1.0)
                annotations.append(f"q={max(act / est, est / act):.1f}")
        if root:
            # execution mode is a plan-wide property; it annotates the
            # root operator (never a separate line, so line-positional
            # consumers of EXPLAIN output keep working)
            annotations.append(f"exec={self.exec_mode}")
            if self.compiled_row_emit is not None:
                annotations.append("fused")
        if annotations:
            label += f"  [{' '.join(annotations)}]"
        lines.append("  " * depth + label)
        for child in node.children():
            self._explain_node(child, depth + 1, lines, analyze=analyze)

    def _has_aggregates(self) -> bool:
        if collect_aggregates(self.select.having):
            return True
        return any(
            collect_aggregates(item.expr)
            for item in self.select.items
            if item.expr is not None
        )

    # -- execution --------------------------------------------------------------

    def execute(self, params: dict | None = None) -> ResultSet:
        params = dict(params or {})
        select = self.select

        if self.columnar_pipeline is not None:
            produced = self.columnar_pipeline.execute(params)
        elif self.grouped:
            produced = self._execute_grouped(params)
        elif self.compiled_row_emit is not None:
            produced = self._execute_fused(params)
        else:
            produced = self._execute_plain(params)

        rows_with_keys = list(produced)

        if select.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row, keys in rows_with_keys:
                fingerprint = tuple(row[c] for c in self.output_columns)
                try:
                    new = fingerprint not in seen
                    if new:
                        seen.add(fingerprint)
                except TypeError:  # unhashable value; fall back to linear scan
                    new = all(
                        fingerprint != tuple(r[c] for c in self.output_columns)
                        for r, _ in unique_rows
                    )
                if new:
                    unique_rows.append((row, keys))
            rows_with_keys = unique_rows

        sort_rows_with_keys(rows_with_keys, select.order_by)

        if select.offset:
            rows_with_keys = rows_with_keys[select.offset:]
        if select.limit is not None:
            rows_with_keys = rows_with_keys[: select.limit]
        return ResultSet(list(self.output_columns), [row for row, _ in rows_with_keys])

    def _order_keys(
        self, scope: RowScope, out_row: dict, params: dict,
        aggregate_values: dict | None = None,
    ) -> list:
        keys = []
        for item in self.select.order_by:
            expr = item.expr
            if aggregate_values is not None and collect_aggregates(expr):
                expr = substitute_aggregates(expr, aggregate_values)
            try:
                keys.append(expr.evaluate(scope, params))
            except QueryError:
                # ORDER BY may name a projected alias not visible in scope.
                if isinstance(expr, ColumnRef) and expr.table is None \
                        and expr.column in out_row:
                    keys.append(out_row[expr.column])
                else:
                    raise
        return keys

    def _project_row(self, scope: RowScope, bindings: Bindings, params: dict,
                     aggregate_values: dict | None = None) -> dict:
        out: dict = {}
        for name, expr, star_source in self._projection:
            if star_source is not None:
                binding, column = star_source
                row = bindings.get(binding)
                out[name] = None if row is None else row[column]
            else:
                assert expr is not None
                if aggregate_values is not None and collect_aggregates(expr):
                    expr = substitute_aggregates(expr, aggregate_values)
                out[name] = expr.evaluate(scope, params)
        return out

    def _execute_fused(self, params: dict):
        """The fused scan→filter→project pipeline for compiled
        single-scan plans: the scan's matching rows feed the row-mode
        emit function directly — no binding map, no :class:`RowScope`,
        no per-operator handoff."""
        emit = self.compiled_row_emit
        for row in self.root.matching_rows(params):
            yield emit(row, params)

    def _execute_plain(self, params: dict):
        emit = self.compiled_emit
        if emit is not None:
            for bindings in self.root.rows(params):
                yield emit(bindings, params)
            return
        for bindings in self.root.rows(params):
            scope = RowScope(bindings, self.columns_by_binding)
            out_row = self._project_row(scope, bindings, params)
            yield out_row, self._order_keys(scope, out_row, params)

    def _execute_grouped(self, params: dict):
        select = self.select
        groups: dict[tuple, list[Bindings]] = {}
        order: list[tuple] = []
        group_key = self.compiled_group_key
        if group_key is not None:
            for bindings in self.root.rows(params):
                key = group_key(bindings, params)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(bindings)
        else:
            for bindings in self.root.rows(params):
                scope = RowScope(bindings, self.columns_by_binding)
                key = tuple(
                    expr.evaluate(scope, params) for expr in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(bindings)
        if not select.group_by and not groups:
            # Aggregates over an empty table still produce one row.
            groups[()] = []
            order.append(())

        wanted = self._wanted_aggregates
        extractors = self.compiled_agg_args
        for key in order:
            group = groups[key]
            aggregate_values: dict[AggregateCall, object] = {}
            for call in wanted:
                if call not in aggregate_values:
                    aggregate_values[call] = compute_aggregate(
                        call, group, self.columns_by_binding, params,
                        extractor=extractors.get(call),
                    )
            representative: Bindings = (
                group[0] if group
                else {b: None for b in self.columns_by_binding}
            )
            yield from self._emit_group(representative, aggregate_values, params)

    def _emit_group(self, representative: Bindings,
                    aggregate_values: dict, params: dict):
        """The per-group tail shared by row and columnar grouped
        execution: HAVING verdict, projection, ORDER BY keys.  Yields
        zero or one ``(out_row, keys)`` pairs."""
        select = self.select
        scope = RowScope(representative, self.columns_by_binding)
        if select.having is not None:
            verdict = substitute_aggregates(
                select.having, aggregate_values
            ).evaluate(scope, params)
            if verdict is not True:
                return
        out_row = self._project_row(
            scope, representative, params, aggregate_values
        )
        yield out_row, self._order_keys(scope, out_row, params, aggregate_values)
