"""SELECT planning and evaluation.

:class:`SelectPlan` compiles a parsed SELECT into an operator tree once;
``execute(params)`` then runs it against current table contents.  Plans
are reusable across requests — the generic unit services compile each
descriptor's query a single time and re-execute it per request.

Planning heuristics (deliberately simple but real):

- single-table equality predicates on an indexed column (or primary key)
  become index-assisted scans,
- joins whose ON contains equi-conditions between the new table and the
  tables already joined become hash joins; anything else falls back to a
  nested loop,
- the full WHERE is re-applied after the joins (re-checking a consumed
  equality is cheap and keeps the planner honest).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import QueryError
from repro.rdb.executor import (
    Bindings,
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    Operator,
    ResultSet,
    RowScope,
    ScanOp,
    SortKey,
    collect_aggregates,
    compute_aggregate,
    substitute_aggregates,
)
from repro.rdb.expr import AggregateCall, And, ColumnRef, Comparison, Expr
from repro.rdb.sqlparser import Select
from repro.rdb.storage import TableStore
from repro.util import unique_name


def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _and_all(parts: list[Expr]) -> Expr | None:
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = And(combined, part)
    return combined


class SelectPlan:
    def __init__(self, select: Select, stores: Mapping[str, TableStore]):
        self.select = select
        self.stores = stores
        self.columns_by_binding: dict[str, list[str]] = {}
        self._binding_order: list[str] = []
        self._register_binding(select.source.binding, select.source.table)
        for join in select.joins:
            self._register_binding(join.table.binding, join.table.table)
        self.root = self._build_tree()
        self.output_columns, self._projection = self._build_projection()

    def _store(self, table: str) -> TableStore:
        if table not in self.stores:
            raise QueryError(f"unknown table {table!r}")
        return self.stores[table]

    def _register_binding(self, binding: str, table: str) -> None:
        if binding in self.columns_by_binding:
            raise QueryError(f"duplicate table binding {binding!r}")
        store = self._store(table)
        self.columns_by_binding[binding] = list(store.schema.column_names)
        self._binding_order.append(binding)

    # -- operator tree -------------------------------------------------------

    def _build_tree(self) -> Operator:
        select = self.select
        source_binding = select.source.binding
        source_store = self._store(select.source.table)

        eq_columns: list[str] = []
        eq_exprs: list[Expr] = []
        if not select.joins:
            for conjunct in _conjuncts(select.where):
                pair = self._constant_equality(conjunct, source_binding, source_store)
                if pair is not None:
                    eq_columns.append(pair[0])
                    eq_exprs.append(pair[1])
        # Only use the lookup path when an index matches exactly; otherwise
        # find_by_key would scan anyway and the filter below suffices.
        root: Operator
        use_lookup: tuple[str, ...] = ()
        for width in range(len(eq_columns), 0, -1):
            candidate = tuple(eq_columns[:width])
            if source_store.index_on(candidate) is not None:
                use_lookup = candidate
                break
        if use_lookup:
            root = ScanOp(
                source_store,
                source_binding,
                eq_columns=use_lookup,
                eq_exprs=tuple(eq_exprs[: len(use_lookup)]),
            )
        else:
            root = ScanOp(source_store, source_binding)

        joined = {source_binding}
        for join in select.joins:
            store = self._store(join.table.table)
            binding = join.table.binding
            probe_exprs: list[Expr] = []
            build_columns: list[str] = []
            residual: list[Expr] = []
            for conjunct in _conjuncts(join.condition):
                pair = self._equi_condition(conjunct, binding, joined)
                if pair is not None:
                    probe_exprs.append(pair[0])
                    build_columns.append(pair[1])
                else:
                    residual.append(conjunct)
            if probe_exprs:
                root = HashJoinOp(
                    root,
                    store,
                    binding,
                    tuple(probe_exprs),
                    tuple(build_columns),
                    _and_all(residual),
                    join.kind,
                    self.columns_by_binding,
                )
            else:
                root = NestedLoopJoinOp(
                    root, store, binding, join.condition, join.kind,
                    self.columns_by_binding,
                )
            joined.add(binding)

        if select.where is not None:
            root = FilterOp(root, select.where, self.columns_by_binding)
        return root

    def _constant_equality(
        self, conjunct: Expr, binding: str, store: TableStore
    ) -> tuple[str, Expr] | None:
        """Match ``binding.col = <constant expr>`` (either side)."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        for col_side, const_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ColumnRef):
                continue
            if col_side.table not in (None, binding):
                continue
            if not store.schema.has_column(col_side.column):
                continue
            if const_side.column_refs():
                continue
            return col_side.column, const_side
        return None

    def _equi_condition(
        self, conjunct: Expr, new_binding: str, joined: set[str]
    ) -> tuple[Expr, str] | None:
        """Match ``new.col = old.col`` and return (probe expr, build column)."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        if left.table is None or right.table is None:
            return None
        if left.table == new_binding and right.table in joined:
            return right, left.column
        if right.table == new_binding and left.table in joined:
            return left, right.column
        return None

    # -- projection -----------------------------------------------------------

    def _build_projection(self) -> tuple[list[str], list[tuple[str, Expr | None, str | None]]]:
        """Returns output column names plus per-item evaluation specs.

        Each spec is ``(output_name, expr, star_binding_column)``:
        exactly one of ``expr`` / star source is set.
        """
        names: list[str] = []
        specs: list[tuple[str, Expr | None, tuple[str, str] | None]] = []
        taken: set[str] = set()

        def claim(base: str) -> str:
            return unique_name(base, taken)

        for position, item in enumerate(self.select.items):
            if item.is_star:
                bindings = (
                    [item.star_table] if item.star_table else self._binding_order
                )
                for binding in bindings:
                    if binding not in self.columns_by_binding:
                        raise QueryError(f"unknown table or alias {binding!r}")
                    for column in self.columns_by_binding[binding]:
                        name = claim(
                            column if column not in taken else f"{binding}.{column}"
                        )
                        specs.append((name, None, (binding, column)))
                        names.append(name)
                continue
            if item.alias:
                base = item.alias
            elif isinstance(item.expr, ColumnRef):
                base = item.expr.column
            else:
                base = f"col{position + 1}"
            name = claim(base)
            specs.append((name, item.expr, None))
            names.append(name)
        return names, specs

    # -- EXPLAIN ---------------------------------------------------------------

    def explain(self) -> str:
        """A textual plan tree: the executor's post-processing steps
        (limit/sort/distinct/grouping) wrap the operator tree, which is
        printed root-first with children indented below."""
        select = self.select
        lines: list[str] = []
        post = []
        if select.limit is not None or select.offset:
            post.append(f"Limit(limit={select.limit}, offset={select.offset})")
        if select.order_by:
            post.append(f"Sort({len(select.order_by)} keys)")
        if select.distinct:
            post.append("Distinct")
        if select.group_by or self._has_aggregates():
            post.append("GroupAggregate")
        for depth, label in enumerate(post):
            lines.append("  " * depth + label)
        self._explain_node(self.root, len(post), lines)
        return "\n".join(lines)

    def _explain_node(self, node, depth: int, lines: list[str]) -> None:
        lines.append("  " * depth + node.describe())
        for child in node.children():
            self._explain_node(child, depth + 1, lines)

    def _has_aggregates(self) -> bool:
        if collect_aggregates(self.select.having):
            return True
        return any(
            collect_aggregates(item.expr)
            for item in self.select.items
            if item.expr is not None
        )

    # -- execution --------------------------------------------------------------

    def execute(self, params: dict | None = None) -> ResultSet:
        params = dict(params or {})
        select = self.select

        has_aggregates = any(
            collect_aggregates(item.expr)
            for item in select.items
            if item.expr is not None
        ) or collect_aggregates(select.having)
        if select.group_by or has_aggregates:
            produced = self._execute_grouped(params)
        else:
            produced = self._execute_plain(params)

        rows_with_keys = list(produced)

        if select.distinct:
            seen: set[tuple] = set()
            unique_rows = []
            for row, keys in rows_with_keys:
                fingerprint = tuple(row[c] for c in self.output_columns)
                try:
                    new = fingerprint not in seen
                    if new:
                        seen.add(fingerprint)
                except TypeError:  # unhashable value; fall back to linear scan
                    new = all(
                        fingerprint != tuple(r[c] for c in self.output_columns)
                        for r, _ in unique_rows
                    )
                if new:
                    unique_rows.append((row, keys))
            rows_with_keys = unique_rows

        for index in range(len(select.order_by) - 1, -1, -1):
            descending = select.order_by[index].descending
            rows_with_keys.sort(
                key=lambda pair, i=index: SortKey(pair[1][i]), reverse=descending
            )

        if select.offset:
            rows_with_keys = rows_with_keys[select.offset:]
        if select.limit is not None:
            rows_with_keys = rows_with_keys[: select.limit]
        return ResultSet(list(self.output_columns), [row for row, _ in rows_with_keys])

    def _order_keys(
        self, scope: RowScope, out_row: dict, params: dict,
        aggregate_values: dict | None = None,
    ) -> list:
        keys = []
        for item in self.select.order_by:
            expr = item.expr
            if aggregate_values is not None and collect_aggregates(expr):
                expr = substitute_aggregates(expr, aggregate_values)
            try:
                keys.append(expr.evaluate(scope, params))
            except QueryError:
                # ORDER BY may name a projected alias not visible in scope.
                if isinstance(expr, ColumnRef) and expr.table is None \
                        and expr.column in out_row:
                    keys.append(out_row[expr.column])
                else:
                    raise
        return keys

    def _project_row(self, scope: RowScope, bindings: Bindings, params: dict,
                     aggregate_values: dict | None = None) -> dict:
        out: dict = {}
        for name, expr, star_source in self._projection:
            if star_source is not None:
                binding, column = star_source
                row = bindings.get(binding)
                out[name] = None if row is None else row[column]
            else:
                assert expr is not None
                if aggregate_values is not None and collect_aggregates(expr):
                    expr = substitute_aggregates(expr, aggregate_values)
                out[name] = expr.evaluate(scope, params)
        return out

    def _execute_plain(self, params: dict):
        for bindings in self.root.rows(params):
            scope = RowScope(bindings, self.columns_by_binding)
            out_row = self._project_row(scope, bindings, params)
            yield out_row, self._order_keys(scope, out_row, params)

    def _execute_grouped(self, params: dict):
        select = self.select
        groups: dict[tuple, list[Bindings]] = {}
        order: list[tuple] = []
        for bindings in self.root.rows(params):
            scope = RowScope(bindings, self.columns_by_binding)
            key = tuple(expr.evaluate(scope, params) for expr in select.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(bindings)
        if not select.group_by and not groups:
            # Aggregates over an empty table still produce one row.
            groups[()] = []
            order.append(())

        wanted: list[AggregateCall] = []
        for item in select.items:
            if item.expr is not None:
                wanted.extend(collect_aggregates(item.expr))
        wanted.extend(collect_aggregates(select.having))
        for order_item in select.order_by:
            wanted.extend(collect_aggregates(order_item.expr))

        for key in order:
            group = groups[key]
            aggregate_values: dict[AggregateCall, object] = {}
            for call in wanted:
                if call not in aggregate_values:
                    aggregate_values[call] = compute_aggregate(
                        call, group, self.columns_by_binding, params
                    )
            representative: Bindings = (
                group[0] if group
                else {b: None for b in self.columns_by_binding}
            )
            scope = RowScope(representative, self.columns_by_binding)
            if select.having is not None:
                verdict = substitute_aggregates(
                    select.having, aggregate_values
                ).evaluate(scope, params)
                if verdict is not True:
                    continue
            out_row = self._project_row(
                scope, representative, params, aggregate_values
            )
            yield out_row, self._order_keys(scope, out_row, params, aggregate_values)
