"""Table and column statistics for cost-based planning.

``ANALYZE`` walks a table once and records, per column: the number of
distinct non-NULL values, the NULL count, and the minimum/maximum.
:class:`repro.rdb.cost` turns these into selectivity estimates; without
statistics the planner falls back to fixed default selectivities (the
classic System R constants), so ANALYZE is an optimization, never a
correctness requirement.

Statistics are a snapshot: they describe the table as of the last
ANALYZE and drift as DML lands.  Only cardinality *estimates* read
them — the executor always runs against live rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnStatistics:
    """Distribution summary of one column at ANALYZE time."""

    distinct: int
    null_count: int
    minimum: object | None = None
    maximum: object | None = None

    @property
    def has_range(self) -> bool:
        return self.minimum is not None and self.maximum is not None


@dataclass(frozen=True)
class TableStatistics:
    """Per-table snapshot produced by ANALYZE."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics | None:
        return self.columns.get(name)


def collect_statistics(store) -> TableStatistics:
    """One full pass over ``store`` (a TableStore), summarizing every
    column.  Values of mixed incomparable types leave min/max unset —
    the cost model then skips range interpolation for that column.

    When the table's column store is materialized (a columnar scan ran),
    the pass reads the column arrays instead of iterating rows —
    distinct counts on dictionary-encoded columns collapse to a set of
    integer codes.  Both paths summarize identical data (ANALYZE runs
    under the write lock, and the sync below drains any pending ops), so
    which one runs is invisible in the resulting statistics.
    """
    column_store = store.column_store
    if column_store.built:
        column_store.ensure_synced()
        if column_store.built:
            return _collect_from_columns(store, column_store)
    rows = list(store.rows.values())
    columns: dict[str, ColumnStatistics] = {}
    for name in store.schema.column_names:
        distinct: set = set()
        null_count = 0
        minimum = maximum = None
        comparable = True
        for row in rows:
            value = row[name]
            if value is None:
                null_count += 1
                continue
            try:
                distinct.add(value)
            except TypeError:
                # unhashable value: count it as always-distinct
                distinct.add(id(value))
            if not comparable:
                continue
            try:
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
            except TypeError:
                comparable = False
                minimum = maximum = None
        columns[name] = ColumnStatistics(
            distinct=len(distinct),
            null_count=null_count,
            minimum=minimum if comparable else None,
            maximum=maximum if comparable else None,
        )
    return TableStatistics(
        table=store.schema.name, row_count=len(rows), columns=columns
    )


def _collect_from_columns(store, column_store) -> TableStatistics:
    """The columnar form of :func:`collect_statistics`: one pass per
    column array over the live positions, with dictionary-encoded
    columns counting distinct *codes* and only decoding the distinct
    values for min/max."""
    if column_store.tombstones:
        live = column_store.live
        positions = [
            i for i in range(len(column_store.row_ids)) if live[i]
        ]
    else:
        positions = range(len(column_store.row_ids))
    row_count = len(positions)
    columns: dict[str, ColumnStatistics] = {}
    for name in store.schema.column_names:
        column = column_store.columns[name]
        if column.dict_encoded:
            codes = column.codes
            null_count = 0
            code_set: set = set()
            for i in positions:
                code = codes[i]
                if code is None:
                    null_count += 1
                else:
                    code_set.add(code)
            if code_set:
                decode = column.decode
                distinct_values = [decode[code] for code in code_set]
                minimum = min(distinct_values)
                maximum = max(distinct_values)
            else:
                minimum = maximum = None
            columns[name] = ColumnStatistics(
                distinct=len(code_set),
                null_count=null_count,
                minimum=minimum,
                maximum=maximum,
            )
            continue
        values = column.values
        distinct: set = set()
        null_count = 0
        minimum = maximum = None
        comparable = True
        for i in positions:
            value = values[i]
            if value is None:
                null_count += 1
                continue
            try:
                distinct.add(value)
            except TypeError:
                distinct.add(id(value))
            if not comparable:
                continue
            try:
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
            except TypeError:
                comparable = False
                minimum = maximum = None
        columns[name] = ColumnStatistics(
            distinct=len(distinct),
            null_count=null_count,
            minimum=minimum if comparable else None,
            maximum=maximum if comparable else None,
        )
    return TableStatistics(
        table=store.schema.name, row_count=row_count, columns=columns
    )
