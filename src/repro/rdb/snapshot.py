"""Point-in-time snapshots of the storage engine's full state.

A snapshot is the base image crash recovery replays the WAL suffix
over: every table's schema, secondary indexes, row heap (with row
ids), auto-increment counter, and whether the table had been ANALYZEd.
Snapshots are written atomically — serialize to a temporary file,
``fsync``, then ``rename`` over the previous snapshot — so a crash
mid-checkpoint always leaves one intact base image on disk.

File layout::

    [8-byte magic "RSNAP001"][u32 crc32(body)][body]

with the body::

    [u64 lsn][u32 table count]
    per table (in creation order, so foreign-key targets load first):
      [schema (structural, without secondary indexes)]
      [u32 index count][indexes...]
      [u64 auto_counter][u64 next_row_id][bool analyzed]
      [u64 row count][per row: u64 row_id + tagged row values]

Statistics are not serialized: ``analyzed`` tables are re-ANALYZEd on
load, which reproduces what the planner needs from the restored rows
themselves.
"""

from __future__ import annotations

import io
import os
import struct
import zlib

from repro.errors import DatabaseError
from repro.rdb.schema import TableSchema
from repro.rdb.storage import TableStore
from repro.rdb.wal import (
    read_index,
    read_row,
    read_schema,
    read_value,
    write_index,
    write_row,
    write_schema,
    write_value,
)

MAGIC = b"RSNAP001"

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


def _bare_schema(schema: TableSchema) -> TableSchema:
    """The schema without secondary indexes.

    Secondary indexes are serialized from the live store (CREATE INDEX
    adds to the store, not the schema), so the schema must not re-add
    its declared ones on load or they would collide.
    """
    if not schema.indexes:
        return schema
    return TableSchema(
        schema.name,
        schema.columns,
        primary_key=schema.primary_key,
        foreign_keys=schema.foreign_keys,
        unique_constraints=schema.unique_constraints,
        indexes=[],
    )


def snapshot_bytes(lsn: int, tables: dict[str, TableStore]) -> bytes:
    """Serialize ``tables`` at commit ``lsn`` to the snapshot format.

    The same blob a snapshot file holds, without touching disk — the
    replication bootstrap ships it over a socket, and the replica
    identity oracle compares two engines byte for byte by comparing
    their serializations.
    """
    body = io.BytesIO()
    body.write(_U64.pack(lsn))
    body.write(_U32.pack(len(tables)))
    for store in tables.values():
        write_schema(body, _bare_schema(store.schema))
        named = [
            (name, index) for name, index in store.iter_indexes()
            if not name.startswith("#")
        ]
        body.write(_U32.pack(len(named)))
        for name, index in named:
            write_index(body, _index_definition(name, index))
        body.write(_U64.pack(store.auto_counter))
        body.write(_U64.pack(store.next_row_id))
        write_value(body, store.statistics is not None)
        body.write(_U64.pack(len(store.rows)))
        for row_id, row in store.rows.items():
            body.write(_U64.pack(row_id))
            write_row(body, row)
    payload = body.getvalue()
    return MAGIC + _U32.pack(zlib.crc32(payload)) + payload


def write_snapshot(path: str, lsn: int, tables: dict[str, TableStore]) -> int:
    """Atomically write a snapshot of ``tables`` at commit ``lsn``.

    Returns the snapshot size in bytes.
    """
    blob = snapshot_bytes(lsn, tables)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return len(blob)


def _index_definition(name: str, index):
    from repro.rdb.schema import Index

    return Index(name, index.columns, unique=index.unique)


def load_snapshot(path: str) -> tuple[int, dict[str, TableStore]]:
    """Rebuild the table stores a snapshot file describes.

    Returns ``(lsn, tables)``; raises :class:`DatabaseError` on a
    corrupt or truncated snapshot (recovery should fail loudly here —
    unlike the WAL, a snapshot is written atomically and must be
    intact).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    return load_snapshot_bytes(blob, origin=path)


def load_snapshot_bytes(blob: bytes,
                        origin: str = "<bytes>") -> tuple[int, dict[str, TableStore]]:
    """Rebuild table stores from an in-memory snapshot blob.

    ``origin`` only labels error messages (a file path, or the peer a
    replication bootstrap came from).
    """
    if not blob.startswith(MAGIC) or len(blob) < len(MAGIC) + 4:
        raise DatabaseError(f"not a snapshot file: {origin!r}")
    (crc,) = _U32.unpack_from(blob, len(MAGIC))
    payload = blob[len(MAGIC) + 4:]
    if zlib.crc32(payload) != crc:
        raise DatabaseError(f"corrupt snapshot (CRC mismatch): {origin!r}")
    buf = io.BytesIO(payload)
    (lsn,) = _U64.unpack(buf.read(8))
    (n_tables,) = _U32.unpack(buf.read(4))
    tables: dict[str, TableStore] = {}
    analyzed: list[TableStore] = []
    for _ in range(n_tables):
        schema = read_schema(buf)
        store = TableStore(schema)
        (n_indexes,) = _U32.unpack(buf.read(4))
        for _ in range(n_indexes):
            store.add_index(read_index(buf))
        (auto_counter,) = _U64.unpack(buf.read(8))
        (next_row_id,) = _U64.unpack(buf.read(8))
        was_analyzed = read_value(buf)
        (n_rows,) = _U64.unpack(buf.read(8))
        for _ in range(n_rows):
            (row_id,) = _U64.unpack(buf.read(8))
            store.apply_redo_insert(row_id, read_row(buf))
        store.restore_counters(auto_counter, next_row_id)
        if was_analyzed:
            analyzed.append(store)
        tables[schema.name] = store
    for store in analyzed:
        from repro.rdb.statistics import collect_statistics

        store.statistics = collect_statistics(store)
    return lsn, tables
