"""Selectivity and cost estimation for the SELECT planner.

A deliberately small Selinger-style model: every predicate conjunct gets
a selectivity in (0, 1], access paths and joins get a scalar cost, and
the planner picks the cheapest alternative.  Estimates prefer ANALYZE
statistics (:mod:`repro.rdb.statistics`) when a table has them and fall
back to the classic fixed constants otherwise.  Base cardinality always
comes from the *live* row count — it is free to read and never stale —
while distributions (distinct counts, min/max) come from the snapshot.

Only plan *shape* depends on these numbers; results never do, because
every scan re-checks the predicate it consumed.

Assumptions the model rests on (the classic Selinger simplifications):

- **uniformity** — values are spread evenly across a column's range,
  so equality selects ``1/distinct`` and a range predicate selects the
  covered fraction of ``[min, max]``;
- **independence** — conjunct selectivities multiply; correlated
  predicates (e.g. ``year = 2002 AND volume = 36``) are over-filtered
  and their plans look cheaper than they run;
- **staleness is bounded** — distributions come from the last ANALYZE
  snapshot, but base cardinality is always the live row count, so a
  growing table degrades estimate *detail*, never its scale;
- **costs are abstract units** (rows touched plus per-structure
  constants), meaningful only relative to each other — the planner
  compares alternatives, it never predicts wall-clock time.

When an estimate misleads the planner, the damage is a slower plan,
never a wrong result; the slow-query log (``repro.obs``) records the
chosen access path precisely so such plans can be spotted and the
descriptor query or its indexes tuned.

Every selectivity entry point also accepts an optional ``feedback``
object (the :class:`repro.rdb.adaptive.SelectivityMemory` duck type:
``selectivity(table, key) -> float | None`` and
``join_distinct(table, columns) -> float | None``).  Learned, observed
selectivities are consulted *before* the statistics fall-backs above —
this is how execution feedback repairs exactly the estimates the
uniformity and independence assumptions get wrong (skewed values,
correlated conjuncts).  ``feedback=None`` keeps the model pure.
"""

from __future__ import annotations

from repro.rdb.expr import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)

#: fixed fallback selectivities (System R's famous magic numbers)
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.5

#: cost units: reading one row during a scan costs 1; an index probe
#: pays a small constant before touching its matching rows
INDEX_PROBE_COST = 1.0
#: building one hash-table entry / probing it
HASH_BUILD_COST = 1.0
HASH_PROBE_COST = 1.0

#: columnar batch execution (repro.rdb.columnar): binding kernels and
#: consulting the column store costs a flat setup fee, after which each
#: row is touched through a C-speed comprehension — a fraction of the
#: unit cost a row-at-a-time scan pays per row
COLUMNAR_SETUP_COST = 64.0
COLUMNAR_ROW_COST = 0.25

_MIN_SELECTIVITY = 1e-4


def clamp(selectivity: float) -> float:
    return max(_MIN_SELECTIVITY, min(1.0, selectivity))


def columnar_scan_cost(live_rows: int) -> float:
    """Estimated cost of scanning ``live_rows`` through batch kernels."""
    return COLUMNAR_SETUP_COST + live_rows * COLUMNAR_ROW_COST


def prefer_columnar(live_rows: int) -> bool:
    """Whether a sequential scan over ``live_rows`` is cheaper columnar
    than row-at-a-time (whose cost is one unit per row).  Small tables
    stay on the row path: the kernel-binding setup fee dominates them."""
    return columnar_scan_cost(live_rows) < float(live_rows)


def _column_of(expr: Expr) -> str | None:
    return expr.column if isinstance(expr, ColumnRef) else None


def _literal_value(expr: Expr):
    """The plan-time value of a constant expression, or None when it is
    parameter-dependent (plans are reused across parameter sets)."""
    return expr.value if isinstance(expr, Literal) else None


def _unique_on(store, column: str) -> bool:
    for _name, index in store.iter_indexes():
        if index.unique and index.columns == (column,):
            return True
    return False


def _distinct(store, column: str) -> int | None:
    """Distinct count for ``column``: statistics first, unique indexes
    as a structural fallback."""
    stats = store.statistics
    if stats is not None:
        column_stats = stats.column(column)
        if column_stats is not None:
            return max(1, column_stats.distinct)
    if _unique_on(store, column):
        return max(1, len(store.rows))
    return None


def _learned(feedback, store, key: tuple) -> float | None:
    """A learned selectivity for ``key`` on ``store``'s table, if the
    feedback memory holds one."""
    if feedback is None:
        return None
    return feedback.selectivity(store.schema.name, key)


def equality_selectivity(store, column: str | None, feedback=None) -> float:
    if column is not None:
        learned = _learned(feedback, store, ("eq", column))
        if learned is not None:
            return learned
        distinct = _distinct(store, column)
        if distinct is not None:
            return clamp(1.0 / distinct)
    return DEFAULT_EQ_SELECTIVITY


def _interpolate(column_stats, low, high, low_inclusive, high_inclusive) -> float | None:
    """Fraction of the [min, max] span covered by [low, high]; None when
    the bounds are not numeric or no statistics apply."""
    if column_stats is None or not column_stats.has_range:
        return None
    minimum, maximum = column_stats.minimum, column_stats.maximum
    values = [v for v in (minimum, maximum, low, high) if v is not None]
    if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in values):
        return None
    span = maximum - minimum
    if span <= 0:
        # single-valued column: the range either covers it or not
        covered = ((low is None or low <= minimum)
                   and (high is None or high >= maximum))
        return 1.0 if covered else _MIN_SELECTIVITY
    effective_low = minimum if low is None else max(low, minimum)
    effective_high = maximum if high is None else min(high, maximum)
    if effective_high < effective_low:
        return _MIN_SELECTIVITY
    return clamp((effective_high - effective_low) / span)


def range_selectivity(store, column: str | None, low, high,
                      low_inclusive: bool = True,
                      high_inclusive: bool = True, *,
                      feedback=None) -> float:
    """Selectivity of ``low <= column <= high`` (either bound optional).
    Learned per-column range selectivity wins; plan-time constants
    interpolate against ANALYZE min/max; parameter bounds fall back to
    the fixed range constant."""
    if column is not None:
        learned = _learned(feedback, store, ("range", column))
        if learned is not None:
            return learned
    if column is not None and store.statistics is not None:
        fraction = _interpolate(
            store.statistics.column(column), low, high,
            low_inclusive, high_inclusive,
        )
        if fraction is not None:
            return fraction
    return DEFAULT_RANGE_SELECTIVITY


def null_selectivity(store, column: str | None, negated: bool) -> float:
    stats = store.statistics
    if column is not None and stats is not None and stats.row_count > 0:
        column_stats = stats.column(column)
        if column_stats is not None:
            fraction = clamp(column_stats.null_count / stats.row_count)
            return clamp(1.0 - fraction) if negated else fraction
    return DEFAULT_EQ_SELECTIVITY


def conjunct_selectivity(store, conjunct: Expr, feedback=None) -> float:
    """Selectivity of one predicate conjunct against ``store``'s rows.

    The conjunct is assumed to reference only this table; multi-table
    conjuncts are estimated by their structure alone.  A learned
    whole-conjunct observation (keyed by the conjunct's structural
    ``repr``) beats any structural estimate.
    """
    learned = _learned(feedback, store, ("conj", repr(conjunct)))
    if learned is not None:
        return learned
    if isinstance(conjunct, Not):
        return clamp(
            1.0 - conjunct_selectivity(store, conjunct.operand, feedback)
        )
    if isinstance(conjunct, Or):
        left = conjunct_selectivity(store, conjunct.left, feedback)
        right = conjunct_selectivity(store, conjunct.right, feedback)
        return clamp(left + right - left * right)
    if isinstance(conjunct, Comparison):
        left_col = _column_of(conjunct.left)
        right_col = _column_of(conjunct.right)
        if conjunct.op == "=":
            if left_col is not None and right_col is None:
                return equality_selectivity(store, left_col, feedback)
            if right_col is not None and left_col is None:
                return equality_selectivity(store, right_col, feedback)
            return DEFAULT_EQ_SELECTIVITY
        if conjunct.op == "<>":
            column = left_col or right_col
            return clamp(1.0 - equality_selectivity(store, column, feedback))
        # range comparison: put the column on the left mentally
        if left_col is not None and right_col is None:
            value = _literal_value(conjunct.right)
            if conjunct.op in ("<", "<="):
                return range_selectivity(
                    store, left_col, None, value, feedback=feedback
                )
            return range_selectivity(
                store, left_col, value, None, feedback=feedback
            )
        if right_col is not None and left_col is None:
            value = _literal_value(conjunct.left)
            if conjunct.op in ("<", "<="):
                return range_selectivity(
                    store, right_col, value, None, feedback=feedback
                )
            return range_selectivity(
                store, right_col, None, value, feedback=feedback
            )
        return DEFAULT_RANGE_SELECTIVITY
    if isinstance(conjunct, Between):
        column = _column_of(conjunct.operand)
        selectivity = range_selectivity(
            store, column,
            _literal_value(conjunct.low), _literal_value(conjunct.high),
            feedback=feedback,
        )
        return clamp(1.0 - selectivity) if conjunct.negated else selectivity
    if isinstance(conjunct, InList):
        column = _column_of(conjunct.operand)
        per_value = equality_selectivity(store, column, feedback)
        selectivity = clamp(per_value * len(conjunct.options))
        return clamp(1.0 - selectivity) if conjunct.negated else selectivity
    if isinstance(conjunct, IsNull):
        return null_selectivity(
            store, _column_of(conjunct.operand), conjunct.negated
        )
    if isinstance(conjunct, Like):
        selectivity = DEFAULT_LIKE_SELECTIVITY
        return clamp(1.0 - selectivity) if conjunct.negated else selectivity
    if isinstance(conjunct, Literal):
        return 1.0 if conjunct.value is True else _MIN_SELECTIVITY
    return DEFAULT_SELECTIVITY


def conjuncts_selectivity(store, conjuncts, feedback=None) -> float:
    """Independence-assumption product over a conjunct list.

    When feedback holds a *set-level* observation for exactly this
    conjunct set, it wins outright — set entries are the one place
    correlation between conjuncts (which independence cannot price) is
    representable.
    """
    conjuncts = list(conjuncts)
    if feedback is not None and len(conjuncts) > 1:
        key = ("set", tuple(sorted(repr(c) for c in conjuncts)))
        learned = _learned(feedback, store, key)
        if learned is not None:
            return learned
    selectivity = 1.0
    for conjunct in conjuncts:
        selectivity *= conjunct_selectivity(store, conjunct, feedback)
    return clamp(selectivity)


def join_distinct(store, columns: tuple[str, ...],
                  feedback=None) -> float:
    """Estimated distinct key count on the build side of an equi-join.
    A learned *effective* distinct count (solved from observed join
    fan-out) beats the structural estimates below."""
    row_count = max(1, len(store.rows))
    if feedback is not None:
        learned = feedback.join_distinct(store.schema.name, tuple(columns))
        if learned is not None:
            return learned
    for _name, index in store.iter_indexes():
        if index.unique and index.columns == tuple(columns):
            return float(row_count)
    estimates = [_distinct(store, column) for column in columns]
    known = [e for e in estimates if e is not None]
    if known:
        return float(min(row_count, max(known)))
    return float(max(1, row_count // 10))
