"""Query compilation: planned ``Expr`` trees to Python callables.

The executor's seed form interprets every expression by recursive
``Expr.evaluate(scope, params)`` walks — per row, per operator.  Each
walk pays a Python call per AST node plus a :class:`RowScope` allocation
and a linear owner search per unqualified column.  This module removes
that tax by translating each planned expression *once* into generated
Python source, compiled with :func:`compile` and executed into a
namespace of small runtime helpers; the resulting closures are cached on
the plan (and therefore in the plan cache, whose table-scoped
invalidation already forces recompilation after DDL/ANALYZE).

Safety argument, in three rules:

1. **Same primitives.**  Generated code calls the *same* helpers the
   interpreter uses (:func:`~repro.rdb.expr.compare_values`, the scalar
   function registry, ``_like_to_regex``, ``_as_text``) or verbatim
   re-implementations of the evaluate bodies, raising byte-identical
   :class:`~repro.errors.QueryError` messages, preserving SQL
   three-valued logic, AND/OR short-circuit order, and lazy ``IN``-list
   option evaluation.
2. **Fallback, never failure.**  Anything the compiler cannot translate
   faithfully (aggregates in scalar position, unknown functions, wrong
   arity, unresolvable or ambiguous columns) raises :class:`CompileError`
   internally and falls back to a closure over ``expr.evaluate`` — the
   interpreter itself — so a compiled plan never behaves differently,
   it is at worst partially interpreted ("mixed" mode).
3. **Oracle.**  ``prepare(optimize=False)`` bypasses compilation
   entirely, preserving the seed interpreter; the hypothesis oracle
   test executes both modes against random schemas/queries and requires
   identical rows and ordering.

Two calling conventions are generated:

- **row mode** ``fn(row, params)`` for expressions over a single table
  binding whose row is a real dict (scan predicates, join build-side
  prefilters and key extractors, the fused scan→filter→project
  pipeline): columns become direct ``row['col']`` subscripts.
- **bindings mode** ``fn(bindings, params)`` for expressions over a
  binding map that may hold ``None`` rows (LEFT JOIN padding): each
  referenced binding is fetched once per call and every column access
  is guarded with ``None if row is None else row['col']``.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.errors import QueryError
from repro.rdb.executor import (
    FilterOp,
    HashJoinOp,
    NestedLoopJoinOp,
    RowScope,
    ScanOp,
)
from repro.rdb.expr import (
    _SCALAR_FUNCTIONS,
    AggregateCall,
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Concat,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Param,
    _as_text,
    _is_number,
    _like_to_regex,
    compare_values,
)


class CompileError(Exception):
    """Internal signal: this expression cannot be compiled faithfully.

    Never escapes the module — every public entry point catches it and
    returns an interpreter-closure fallback instead.
    """


# ---------------------------------------------------------------------------
# Runtime helpers — the vocabulary of generated code.  Each mirrors the
# corresponding ``Expr.evaluate`` body exactly, including error text.
# ---------------------------------------------------------------------------


def _missing_param(name):
    raise QueryError(f"missing query parameter {name!r}")


def _cmp_eq(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign == 0


def _cmp_ne(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign != 0


def _cmp_lt(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign < 0


def _cmp_le(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign <= 0


def _cmp_gt(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign > 0


def _cmp_ge(lhs, rhs):
    sign = compare_values(lhs, rhs)
    return None if sign is None else sign >= 0


def _arith_add(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if isinstance(lhs, str) and isinstance(rhs, str):
        return lhs + rhs
    if not (_is_number(lhs) and _is_number(rhs)):
        raise QueryError(f"arithmetic '+' needs numbers, got {lhs!r} and {rhs!r}")
    return lhs + rhs


def _arith_sub(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if not (_is_number(lhs) and _is_number(rhs)):
        raise QueryError(f"arithmetic '-' needs numbers, got {lhs!r} and {rhs!r}")
    return lhs - rhs


def _arith_mul(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if not (_is_number(lhs) and _is_number(rhs)):
        raise QueryError(f"arithmetic '*' needs numbers, got {lhs!r} and {rhs!r}")
    return lhs * rhs


def _arith_div(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if not (_is_number(lhs) and _is_number(rhs)):
        raise QueryError(f"arithmetic '/' needs numbers, got {lhs!r} and {rhs!r}")
    if rhs == 0:
        raise QueryError("division by zero")
    result = lhs / rhs
    if isinstance(lhs, int) and isinstance(rhs, int) and result == int(result):
        return int(result)
    return result


def _arith_mod(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    if not (_is_number(lhs) and _is_number(rhs)):
        raise QueryError(f"arithmetic '%' needs numbers, got {lhs!r} and {rhs!r}")
    if rhs == 0:
        raise QueryError("modulo by zero")
    return lhs % rhs


def _concat(lhs, rhs):
    if lhs is None or rhs is None:
        return None
    return _as_text(lhs) + _as_text(rhs)


def _negate(value):
    if value is None:
        return None
    if not _is_number(value):
        raise QueryError(f"cannot negate {value!r}")
    return -value


def _between(value, low, high, negated):
    low_sign = compare_values(value, low)
    high_sign = compare_values(value, high)
    if low_sign is None or high_sign is None:
        return None
    inside = low_sign >= 0 and high_sign <= 0
    return not inside if negated else inside


#: LIKE patterns repeat across rows and statements; the interpreter
#: rebuilds the regex per row, compiled code caches per pattern text
_like_regex = functools.lru_cache(maxsize=512)(_like_to_regex)


def _like_dyn(value, pattern, negated):
    if value is None or pattern is None:
        return None
    matched = _like_regex(str(pattern)).match(str(value)) is not None
    return not matched if negated else matched


def _like_rx(value, regex, negated):
    """LIKE against a pattern known (and non-NULL) at compile time."""
    if value is None:
        return None
    matched = regex.match(str(value)) is not None
    return not matched if negated else matched


def _in_list(value, options, env, params, negated):
    """The interpreter's lazy IN-list loop over pre-compiled options."""
    if value is None:
        return None
    saw_null = False
    for option in options:
        candidate = option(env, params)
        if candidate is None:
            saw_null = True
            continue
        if compare_values(value, candidate) == 0:
            return not negated
    if saw_null:
        return None
    return negated


_CMP_HELPERS = {
    "=": "_cmp_eq",
    "<>": "_cmp_ne",
    "<": "_cmp_lt",
    "<=": "_cmp_le",
    ">": "_cmp_gt",
    ">=": "_cmp_ge",
}

_ARITH_HELPERS = {
    "+": "_arith_add",
    "-": "_arith_sub",
    "*": "_arith_mul",
    "/": "_arith_div",
    "%": "_arith_mod",
}

#: scalar functions whose arity the interpreter does not pin to one
_VARIADIC_FUNCTIONS = ("COALESCE", "CONCAT", "ROUND", "SUBSTR")

#: shared globals of every generated function
_RUNTIME = {
    "_missing_param": _missing_param,
    "_cmp_eq": _cmp_eq,
    "_cmp_ne": _cmp_ne,
    "_cmp_lt": _cmp_lt,
    "_cmp_le": _cmp_le,
    "_cmp_gt": _cmp_gt,
    "_cmp_ge": _cmp_ge,
    "_arith_add": _arith_add,
    "_arith_sub": _arith_sub,
    "_arith_mul": _arith_mul,
    "_arith_div": _arith_div,
    "_arith_mod": _arith_mod,
    "_concat": _concat,
    "_negate": _negate,
    "_between": _between,
    "_like_dyn": _like_dyn,
    "_like_rx": _like_rx,
    "_in_list": _in_list,
}


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _Codegen:
    """Statement-oriented emitter for one generated function.

    Expressions compile to *atoms* (local variable names, inline
    constants, or ``row['col']`` subscripts); anything with control flow
    or a helper call is emitted as statements assigning a fresh local.
    Statement order preserves the interpreter's evaluation order, so a
    compiled expression raises exactly when the interpreter would.
    """

    def __init__(self, columns_by_binding: dict, mode: str):
        self.columns = columns_by_binding
        self.mode = mode  # "row" | "bindings"
        self.ns: dict = {}
        self.lines: list[str] = []
        #: binding-row fetches hoisted to the top of the function
        self.preamble: list[str] = []
        self.indent = 1
        self._counter = 0
        self._row_vars: dict[str, str] = {}

    def fresh(self, prefix: str = "v") -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def checkpoint(self) -> tuple[int, int]:
        return len(self.lines), self.indent

    def rollback(self, mark: tuple[int, int]) -> None:
        del self.lines[mark[0]:]
        self.indent = mark[1]

    def const(self, value) -> str:
        """An atom for a Python constant, inlined when its repr
        round-trips (ints, finite floats, strs, bools, None)."""
        if value is None or value is True or value is False:
            return repr(value)
        if isinstance(value, (int, str)) and not isinstance(value, bool):
            return repr(value)
        if isinstance(value, float) and math.isfinite(value):
            return repr(value)
        name = self.fresh("c")
        self.ns[name] = value
        return name

    def as_local(self, atom: str) -> str:
        """Pin an atom to a local so it can be referenced repeatedly."""
        if atom.isidentifier():
            return atom
        out = self.fresh()
        self.emit(f"{out} = {atom}")
        return out

    # -- column resolution --------------------------------------------------

    def resolve(self, ref: ColumnRef) -> str:
        """The binding owning ``ref``; mirrors :meth:`RowScope.lookup`'s
        static resolution, failing compilation where lookup would raise."""
        if ref.table is not None:
            columns = self.columns.get(ref.table)
            if columns is None or ref.column not in columns:
                raise CompileError(f"unresolvable column {ref.display!r}")
            return ref.table
        owners = [
            binding
            for binding, columns in self.columns.items()
            if ref.column in columns
        ]
        if len(owners) != 1:
            raise CompileError(f"unresolvable column {ref.column!r}")
        return owners[0]

    def _row_var(self, binding: str) -> str:
        var = self._row_vars.get(binding)
        if var is None:
            var = f"_row{len(self._row_vars)}"
            self._row_vars[binding] = var
            self.preamble.append(f"    {var} = _env.get({binding!r})")
        return var

    def column_atom(self, ref: ColumnRef) -> str:
        binding = self.resolve(ref)
        if self.mode == "row":
            return f"_env[{ref.column!r}]"
        var = self._row_var(binding)
        out = self.fresh()
        self.emit(f"{out} = None if {var} is None else {var}[{ref.column!r}]")
        return out

    # -- expression dispatch ------------------------------------------------

    def compile(self, node: Expr) -> str:
        if isinstance(node, Literal):
            return self.const(node.value)
        if isinstance(node, ColumnRef):
            return self.column_atom(node)
        if isinstance(node, Param):
            out = self.fresh()
            name = node.name
            self.emit(
                f"{out} = _p[{name!r}] if {name!r} in _p "
                f"else _missing_param({name!r})"
            )
            return out
        if isinstance(node, Comparison):
            helper = _CMP_HELPERS.get(node.op)
            if helper is None:
                raise CompileError(f"unknown comparison operator {node.op!r}")
            lhs = self.compile(node.left)
            rhs = self.compile(node.right)
            out = self.fresh()
            self.emit(f"{out} = {helper}({lhs}, {rhs})")
            return out
        if isinstance(node, Arithmetic):
            helper = _ARITH_HELPERS.get(node.op)
            if helper is None:
                raise CompileError(f"unknown arithmetic operator {node.op!r}")
            lhs = self.compile(node.left)
            rhs = self.compile(node.right)
            out = self.fresh()
            self.emit(f"{out} = {helper}({lhs}, {rhs})")
            return out
        if isinstance(node, Concat):
            lhs = self.compile(node.left)
            rhs = self.compile(node.right)
            out = self.fresh()
            self.emit(f"{out} = _concat({lhs}, {rhs})")
            return out
        if isinstance(node, And):
            return self._compile_and_or(node, short_value=False)
        if isinstance(node, Or):
            return self._compile_and_or(node, short_value=True)
        if isinstance(node, Not):
            value = self.as_local(self.compile(node.operand))
            out = self.fresh()
            self.emit(f"{out} = None if {value} is None else (not {value})")
            return out
        if isinstance(node, Negate):
            value = self.compile(node.operand)
            out = self.fresh()
            self.emit(f"{out} = _negate({value})")
            return out
        if isinstance(node, IsNull):
            value = self.compile(node.operand)
            out = self.fresh()
            test = "is not None" if node.negated else "is None"
            self.emit(f"{out} = {value} {test}")
            return out
        if isinstance(node, InList):
            return self._compile_in_list(node)
        if isinstance(node, Like):
            return self._compile_like(node)
        if isinstance(node, Between):
            value = self.compile(node.operand)
            low = self.compile(node.low)
            high = self.compile(node.high)
            out = self.fresh()
            self.emit(
                f"{out} = _between({value}, {low}, {high}, {node.negated!r})"
            )
            return out
        if isinstance(node, FunctionCall):
            return self._compile_function(node)
        if isinstance(node, AggregateCall):
            raise CompileError("aggregate in scalar position")
        raise CompileError(f"unsupported expression node {type(node).__name__}")

    def _compile_and_or(self, node, short_value: bool) -> str:
        """AND/OR with the interpreter's 3VL short-circuit: the right
        operand is not evaluated when the left already decides."""
        decided = repr(short_value)
        out = self.fresh()
        lhs = self.as_local(self.compile(node.left))
        self.emit(f"if {lhs} is {decided}:")
        self.indent += 1
        self.emit(f"{out} = {short_value!r}")
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        rhs = self.as_local(self.compile(node.right))
        self.emit(f"if {rhs} is {decided}:")
        self.indent += 1
        self.emit(f"{out} = {short_value!r}")
        self.indent -= 1
        self.emit(f"elif {lhs} is None or {rhs} is None:")
        self.indent += 1
        self.emit(f"{out} = None")
        self.indent -= 1
        self.emit("else:")
        self.indent += 1
        self.emit(f"{out} = {(not short_value)!r}")
        self.indent -= 2
        return out

    def _compile_in_list(self, node: InList) -> str:
        value = self.compile(node.operand)
        options = tuple(
            _compile_subfunction(option, self.columns, self.mode)
            for option in node.options
        )
        name = self.fresh("opts")
        self.ns[name] = options
        out = self.fresh()
        self.emit(
            f"{out} = _in_list({value}, {name}, _env, _p, {node.negated!r})"
        )
        return out

    def _compile_like(self, node: Like) -> str:
        value = self.compile(node.operand)
        out = self.fresh()
        if isinstance(node.pattern, Literal) and node.pattern.value is not None:
            name = self.fresh("rx")
            self.ns[name] = _like_to_regex(str(node.pattern.value))
            self.emit(f"{out} = _like_rx({value}, {name}, {node.negated!r})")
            return out
        pattern = self.compile(node.pattern)
        self.emit(f"{out} = _like_dyn({value}, {pattern}, {node.negated!r})")
        return out

    def _compile_function(self, node: FunctionCall) -> str:
        func = _SCALAR_FUNCTIONS.get(node.name.upper())
        if func is None:
            raise CompileError(f"unknown function {node.name!r}")
        if node.name.upper() not in _VARIADIC_FUNCTIONS and len(node.args) != 1:
            raise CompileError(f"{node.name} arity")
        args = [self.compile(arg) for arg in node.args]
        name = self.fresh("fn")
        self.ns[name] = func
        out = self.fresh()
        self.emit(f"{out} = {name}([{', '.join(args)}])")
        return out


def _assemble(cg: _Codegen, label: str):
    """exec() the collected statements into a callable."""
    body = cg.preamble + cg.lines
    source = "def _compiled(_env, _p):\n" + "\n".join(body)
    namespace = dict(_RUNTIME)
    namespace.update(cg.ns)
    code = compile(source, f"<rdb-compiled:{label}>", "exec")
    exec(code, namespace)  # noqa: S102 - trusted, self-generated source
    return namespace["_compiled"], source


def _compile_subfunction(expr: Expr, columns: dict, mode: str):
    """A standalone compiled callable for one sub-expression (IN-list
    options, which the interpreter evaluates lazily per row)."""
    cg = _Codegen(columns, mode)
    result = cg.compile(expr)
    cg.emit(f"return {result}")
    fn, _ = _assemble(cg, "in-option")
    return fn


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


@dataclass
class CompiledExpr:
    """A callable form of one expression.

    ``fn(env, params)`` where ``env`` is a row dict (row mode) or a
    binding map (bindings mode).  ``compiled`` is False when the
    callable is an interpreter fallback; ``source`` carries the
    generated text for debugging (None for fallbacks).
    """

    fn: object
    compiled: bool
    source: str | None = None


def _interpreter_fallback(expr: Expr, columns: dict, mode: str):
    if mode == "row":
        (binding,) = columns.keys()

        def fallback(env, params, _expr=expr, _columns=columns, _b=binding):
            return _expr.evaluate(RowScope({_b: env}, _columns), params)
    else:

        def fallback(env, params, _expr=expr, _columns=columns):
            return _expr.evaluate(RowScope(env, _columns), params)

    return fallback


def compile_scalar(
    expr: Expr, columns: dict, mode: str = "bindings", label: str = "expr"
) -> CompiledExpr:
    """Compile one expression to ``fn(env, params)``; interpreter
    fallback on any :class:`CompileError`."""
    try:
        cg = _Codegen(columns, mode)
        result = cg.compile(expr)
        cg.emit(f"return {result}")
        fn, source = _assemble(cg, label)
        return CompiledExpr(fn, True, source)
    except CompileError:
        return CompiledExpr(_interpreter_fallback(expr, columns, mode), False)


def compile_tuple(
    exprs, columns: dict, mode: str = "bindings", label: str = "tuple"
) -> CompiledExpr:
    """Compile ``fn(env, params) -> tuple`` over several expressions
    (hash-join probe keys, GROUP BY keys)."""
    exprs = tuple(exprs)
    try:
        cg = _Codegen(columns, mode)
        atoms = [cg.compile(expr) for expr in exprs]
        trailing = "," if len(atoms) == 1 else ""
        cg.emit(f"return ({', '.join(atoms)}{trailing})")
        fn, source = _assemble(cg, label)
        return CompiledExpr(fn, True, source)
    except CompileError:
        def fallback(env, params, _exprs=exprs, _columns=columns):
            scope = RowScope(env, _columns)
            return tuple(expr.evaluate(scope, params) for expr in _exprs)

        return CompiledExpr(fallback, False)


def compile_row_key(columns: tuple):
    """``fn(row) -> tuple`` over plain column names — the hash-join
    build-side key extractor.  Always compilable."""
    atoms = ", ".join(f"_env[{column!r}]" for column in columns)
    trailing = "," if len(columns) == 1 else ""
    source = f"def _compiled(_env):\n    return ({atoms}{trailing})"
    namespace: dict = {}
    exec(compile(source, "<rdb-compiled:build-key>", "exec"), namespace)
    return namespace["_compiled"]


def compile_emit(
    projection,
    order_by,
    output_columns,
    columns: dict,
    mode: str = "bindings",
) -> CompiledExpr | None:
    """Compile the plan's per-row tail — project + order keys — into one
    ``fn(env, params) -> (out_row, order_keys)`` call.

    Replicates ``_order_keys``'s alias fallback at compile time: an
    ORDER BY column that does not resolve in scope but names an output
    column reads the projected row instead.  Returns ``None`` when any
    part resists compilation; the caller keeps the interpreted tail
    (all-or-nothing, so a plan's emit path is never half compiled).
    """
    try:
        cg = _Codegen(columns, mode)
        items: list[tuple[str, str]] = []
        for name, expr, star_source in projection:
            if star_source is not None:
                binding, column = star_source
                if binding not in columns or column not in columns[binding]:
                    raise CompileError(f"unresolvable star column {column!r}")
                if mode == "row":
                    items.append((name, f"_env[{column!r}]"))
                else:
                    var = cg._row_var(binding)
                    out = cg.fresh()
                    cg.emit(
                        f"{out} = None if {var} is None else {var}[{column!r}]"
                    )
                    items.append((name, out))
            else:
                items.append((name, cg.compile(expr)))
        pairs = ", ".join(f"{name!r}: {atom}" for name, atom in items)
        cg.emit(f"_out = {{{pairs}}}")
        keys: list[str] = []
        for item in order_by:
            expr = item.expr
            mark = cg.checkpoint()
            try:
                keys.append(cg.as_local(cg.compile(expr)))
            except CompileError:
                cg.rollback(mark)
                if (
                    isinstance(expr, ColumnRef)
                    and expr.table is None
                    and expr.column in output_columns
                ):
                    keys.append(f"_out[{expr.column!r}]")
                else:
                    raise
        cg.emit(f"return (_out, [{', '.join(keys)}])")
        fn, source = _assemble(cg, "emit")
        return CompiledExpr(fn, True, source)
    except CompileError:
        return None


def compile_plan(plan) -> dict:
    """Attach compiled forms to a plan's operators and emit path.

    Walks the operator tree, compiling scan/filter predicates, join
    probe keys, build-key extractors, prefilters and residuals; then the
    plan-level tail (fused row-mode emit for single-scan plans, generic
    bindings-mode emit otherwise) or, for grouped queries, the GROUP BY
    key and aggregate-argument extractors.  Returns
    ``{"compiled": n, "interpreted": m}`` counting translation units;
    ``m > 0`` means the plan runs in "mixed" mode.
    """
    stats = {"compiled": 0, "interpreted": 0}

    def note(compiled_expr: CompiledExpr):
        stats["compiled" if compiled_expr.compiled else "interpreted"] += 1
        return compiled_expr.fn

    columns = plan.columns_by_binding
    stack = [plan.root]
    while stack:
        op = stack.pop()
        stack.extend(op.children())
        if isinstance(op, ScanOp):
            if op.predicate is not None:
                op.compiled_predicate = note(compile_scalar(
                    op.predicate, op._scope_columns, "row", "scan-predicate"
                ))
        elif isinstance(op, FilterOp):
            op.compiled_predicate = note(compile_scalar(
                op.predicate, op.columns_by_binding, "bindings", "filter"
            ))
        elif isinstance(op, HashJoinOp):
            op.compiled_probe = note(compile_tuple(
                op.probe_exprs, op.columns_by_binding, "bindings", "probe-key"
            ))
            op.compiled_build_key = compile_row_key(op.build_columns)
            if op.prefilter is not None:
                op.compiled_prefilter = note(compile_scalar(
                    op.prefilter, op._own_columns, "row", "prefilter"
                ))
            if op.residual is not None:
                op.compiled_residual = note(compile_scalar(
                    op.residual, op.columns_by_binding, "bindings", "residual"
                ))
        elif isinstance(op, NestedLoopJoinOp):
            op.compiled_condition = note(compile_scalar(
                op.condition, op.columns_by_binding, "bindings", "join-on"
            ))
            if op.prefilter is not None:
                op.compiled_prefilter = note(compile_scalar(
                    op.prefilter, op._own_columns, "row", "prefilter"
                ))

    select = plan.select
    if plan.grouped:
        if select.group_by:
            plan.compiled_group_key = note(compile_tuple(
                select.group_by, columns, "bindings", "group-key"
            ))
        for call in plan._wanted_aggregates:
            if call.argument is not None and call not in plan.compiled_agg_args:
                plan.compiled_agg_args[call] = note(compile_scalar(
                    call.argument, columns, "bindings", "aggregate-argument"
                ))
    elif isinstance(plan.root, ScanOp):
        emit = compile_emit(
            plan._projection, select.order_by, plan.output_columns,
            plan.root._scope_columns, "row",
        )
        if emit is not None:
            plan.compiled_row_emit = note(emit)
        else:
            stats["interpreted"] += 1
    else:
        emit = compile_emit(
            plan._projection, select.order_by, plan.output_columns,
            columns, "bindings",
        )
        if emit is not None:
            plan.compiled_emit = note(emit)
        else:
            stats["interpreted"] += 1
    return stats
