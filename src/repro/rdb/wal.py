"""The write-ahead log: typed, CRC-framed binary commit records.

Durability for the rdb follows the classic redo-log protocol: every
committed transaction appends one *commit record* — the full redo
information for its writes — to an append-only binary log, and the
record reaches disk (``fsync``) before the commit returns.  Crash
recovery (:mod:`repro.rdb.snapshot` + :class:`repro.rdb.engine.DurableEngine`)
replays the committed prefix of the log over the latest snapshot; a
torn tail (a crash mid-append) fails its CRC or length check and is
ignored, so recovery always lands exactly on a transaction boundary.

File layout::

    [8-byte magic "RWAL0001"]
    repeat:
      [u32 payload length][u32 crc32(payload)][payload]

Each payload is one commit record::

    [u64 lsn][u32 op count][ops...]

and each op starts with a 1-byte opcode followed by opcode-specific
fields (see the ``OP_*`` constants).  Values use a tagged binary
encoding covering the engine's SQL types (NULL, booleans, arbitrary
ints, floats, strings, dates); table schemas are serialized
structurally — not as DDL text — so defaults and constraints survive
replay byte-for-byte.

Group commit: with ``group_window_seconds > 0`` the log still writes
every record to the OS immediately but defers the ``fsync`` until the
window since the last sync has elapsed (or an explicit
:meth:`WriteAheadLog.flush`), amortizing the dominant durability cost
across a burst of small transactions at the price of a bounded
durability window — the ``commit_delay`` knob of real engines.
"""

from __future__ import annotations

import datetime
import io
import os
import struct
import time
import zlib
from dataclasses import dataclass, field

from repro.errors import DatabaseError
from repro.rdb.schema import Column, ForeignKey, Index, TableSchema
from repro.rdb.types import type_from_name

MAGIC = b"RWAL0001"

# -- opcodes (one per typed commit-record entry) ----------------------------

OP_INSERT = 1
OP_UPDATE = 2
OP_DELETE = 3
OP_CREATE_TABLE = 4
OP_CREATE_INDEX = 5
OP_DROP_TABLE = 6
OP_ANALYZE = 7

OP_NAMES = {
    OP_INSERT: "insert",
    OP_UPDATE: "update",
    OP_DELETE: "delete",
    OP_CREATE_TABLE: "create_table",
    OP_CREATE_INDEX: "create_index",
    OP_DROP_TABLE: "drop_table",
    OP_ANALYZE: "analyze",
}

# -- value codec ------------------------------------------------------------

_TAG_NULL = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3  # length-prefixed big-endian two's complement (any size)
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_DATE = 6

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")
_DATE = struct.Struct(">HBB")


def write_value(out: io.BytesIO, value) -> None:
    """Append one tagged value to ``out``."""
    if value is None:
        out.write(bytes((_TAG_NULL,)))
    elif value is True:
        out.write(bytes((_TAG_TRUE,)))
    elif value is False:
        out.write(bytes((_TAG_FALSE,)))
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1,
                             "big", signed=True)
        out.write(bytes((_TAG_INT,)))
        out.write(_U32.pack(len(raw)))
        out.write(raw)
    elif isinstance(value, float):
        out.write(bytes((_TAG_FLOAT,)))
        out.write(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.write(bytes((_TAG_STR,)))
        out.write(_U32.pack(len(raw)))
        out.write(raw)
    elif isinstance(value, datetime.date):
        out.write(bytes((_TAG_DATE,)))
        out.write(_DATE.pack(value.year, value.month, value.day))
    else:
        raise DatabaseError(
            f"cannot serialize {type(value).__name__} value {value!r} to the WAL"
        )


def read_value(buf: io.BytesIO):
    """Read one tagged value written by :func:`write_value`."""
    tag = _read_exact(buf, 1)[0]
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        (length,) = _U32.unpack(_read_exact(buf, 4))
        return int.from_bytes(_read_exact(buf, length), "big", signed=True)
    if tag == _TAG_FLOAT:
        return _F64.unpack(_read_exact(buf, 8))[0]
    if tag == _TAG_STR:
        (length,) = _U32.unpack(_read_exact(buf, 4))
        return _read_exact(buf, length).decode("utf-8")
    if tag == _TAG_DATE:
        year, month, day = _DATE.unpack(_read_exact(buf, 4))
        return datetime.date(year, month, day)
    raise DatabaseError(f"corrupt WAL value tag {tag}")


def _read_exact(buf: io.BytesIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise DatabaseError("truncated WAL payload")
    return data


def _write_str(out: io.BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    out.write(_U32.pack(len(raw)))
    out.write(raw)


def _read_str(buf: io.BytesIO) -> str:
    (length,) = _U32.unpack(_read_exact(buf, 4))
    return _read_exact(buf, length).decode("utf-8")


def write_row(out: io.BytesIO, row: dict) -> None:
    out.write(_U32.pack(len(row)))
    for name, value in row.items():
        _write_str(out, name)
        write_value(out, value)


def read_row(buf: io.BytesIO) -> dict:
    (count,) = _U32.unpack(_read_exact(buf, 4))
    row: dict = {}
    for _ in range(count):
        name = _read_str(buf)
        row[name] = read_value(buf)
    return row


# -- schema codec -----------------------------------------------------------
# Structural, not DDL text: ``TableSchema.to_ddl()`` does not render
# column defaults, so a textual round-trip would silently drop them.

def write_schema(out: io.BytesIO, schema: TableSchema) -> None:
    _write_str(out, schema.name)
    out.write(_U32.pack(len(schema.columns)))
    for column in schema.columns:
        _write_str(out, column.name)
        _write_str(out, column.sql_type.ddl())
        write_value(out, column.nullable)
        write_value(out, column.auto_increment)
        write_value(out, column.default)
    out.write(_U32.pack(len(schema.primary_key)))
    for name in schema.primary_key:
        _write_str(out, name)
    out.write(_U32.pack(len(schema.foreign_keys)))
    for fkey in schema.foreign_keys:
        out.write(_U32.pack(len(fkey.columns)))
        for name in fkey.columns:
            _write_str(out, name)
        _write_str(out, fkey.target_table)
        for name in fkey.target_columns:
            _write_str(out, name)
        _write_str(out, fkey.on_delete)
    out.write(_U32.pack(len(schema.unique_constraints)))
    for unique in schema.unique_constraints:
        out.write(_U32.pack(len(unique)))
        for name in unique:
            _write_str(out, name)
    out.write(_U32.pack(len(schema.indexes)))
    for index in schema.indexes:
        write_index(out, index)


def read_schema(buf: io.BytesIO) -> TableSchema:
    name = _read_str(buf)
    (n_columns,) = _U32.unpack(_read_exact(buf, 4))
    columns = []
    for _ in range(n_columns):
        col_name = _read_str(buf)
        type_ddl = _read_str(buf)
        nullable = read_value(buf)
        auto_increment = read_value(buf)
        default = read_value(buf)
        columns.append(Column(col_name, type_from_name(type_ddl),
                              nullable=nullable,
                              auto_increment=auto_increment,
                              default=default))
    (n_pk,) = _U32.unpack(_read_exact(buf, 4))
    primary_key = tuple(_read_str(buf) for _ in range(n_pk))
    (n_fk,) = _U32.unpack(_read_exact(buf, 4))
    foreign_keys = []
    for _ in range(n_fk):
        (n_cols,) = _U32.unpack(_read_exact(buf, 4))
        fk_columns = tuple(_read_str(buf) for _ in range(n_cols))
        target_table = _read_str(buf)
        target_columns = tuple(_read_str(buf) for _ in range(n_cols))
        on_delete = _read_str(buf)
        foreign_keys.append(ForeignKey(fk_columns, target_table,
                                       target_columns, on_delete=on_delete))
    (n_unique,) = _U32.unpack(_read_exact(buf, 4))
    unique_constraints = []
    for _ in range(n_unique):
        (n_cols,) = _U32.unpack(_read_exact(buf, 4))
        unique_constraints.append(
            tuple(_read_str(buf) for _ in range(n_cols))
        )
    (n_indexes,) = _U32.unpack(_read_exact(buf, 4))
    indexes = [read_index(buf) for _ in range(n_indexes)]
    return TableSchema(name, columns, primary_key=primary_key,
                       foreign_keys=foreign_keys,
                       unique_constraints=unique_constraints,
                       indexes=indexes)


def write_index(out: io.BytesIO, index: Index) -> None:
    _write_str(out, index.name)
    out.write(_U32.pack(len(index.columns)))
    for name in index.columns:
        _write_str(out, name)
    write_value(out, index.unique)


def read_index(buf: io.BytesIO) -> Index:
    name = _read_str(buf)
    (n_cols,) = _U32.unpack(_read_exact(buf, 4))
    columns = tuple(_read_str(buf) for _ in range(n_cols))
    unique = read_value(buf)
    return Index(name, columns, unique=unique)


# -- commit records ---------------------------------------------------------

@dataclass
class CommitRecord:
    """One committed transaction: its LSN plus typed redo ops.

    Ops are tuples whose first element is an ``OP_*`` opcode:

    - ``(OP_INSERT, table, row_id, row)``
    - ``(OP_UPDATE, table, row_id, new_row)``
    - ``(OP_DELETE, table, row_id)``
    - ``(OP_CREATE_TABLE, schema)``
    - ``(OP_CREATE_INDEX, table, index)``
    - ``(OP_DROP_TABLE, table)``
    - ``(OP_ANALYZE, table_or_None)``
    """

    lsn: int
    ops: list = field(default_factory=list)

    def tables(self) -> set[str]:
        """Names of every table this record touches."""
        touched: set[str] = set()
        for op in self.ops:
            if op[0] == OP_CREATE_TABLE:
                touched.add(op[1].name)
            else:
                touched.add(op[1])
        return touched

    def encode(self) -> bytes:
        out = io.BytesIO()
        out.write(_U64.pack(self.lsn))
        out.write(_U32.pack(len(self.ops)))
        for op in self.ops:
            opcode = op[0]
            out.write(bytes((opcode,)))
            if opcode in (OP_INSERT, OP_UPDATE):
                _write_str(out, op[1])
                out.write(_U64.pack(op[2]))
                write_row(out, op[3])
            elif opcode == OP_DELETE:
                _write_str(out, op[1])
                out.write(_U64.pack(op[2]))
            elif opcode == OP_CREATE_TABLE:
                write_schema(out, op[1])
            elif opcode == OP_CREATE_INDEX:
                _write_str(out, op[1])
                write_index(out, op[2])
            elif opcode == OP_DROP_TABLE:
                _write_str(out, op[1])
            elif opcode == OP_ANALYZE:
                write_value(out, op[1])
            else:
                raise DatabaseError(f"unknown WAL opcode {opcode}")
        return out.getvalue()

    @classmethod
    def decode(cls, payload: bytes) -> "CommitRecord":
        buf = io.BytesIO(payload)
        (lsn,) = _U64.unpack(_read_exact(buf, 8))
        (n_ops,) = _U32.unpack(_read_exact(buf, 4))
        ops: list = []
        for _ in range(n_ops):
            opcode = _read_exact(buf, 1)[0]
            if opcode in (OP_INSERT, OP_UPDATE):
                table = _read_str(buf)
                (row_id,) = _U64.unpack(_read_exact(buf, 8))
                ops.append((opcode, table, row_id, read_row(buf)))
            elif opcode == OP_DELETE:
                table = _read_str(buf)
                (row_id,) = _U64.unpack(_read_exact(buf, 8))
                ops.append((opcode, table, row_id))
            elif opcode == OP_CREATE_TABLE:
                ops.append((opcode, read_schema(buf)))
            elif opcode == OP_CREATE_INDEX:
                table = _read_str(buf)
                ops.append((opcode, table, read_index(buf)))
            elif opcode == OP_DROP_TABLE:
                ops.append((opcode, _read_str(buf)))
            elif opcode == OP_ANALYZE:
                ops.append((opcode, read_value(buf)))
            else:
                raise DatabaseError(f"unknown WAL opcode {opcode}")
        return cls(lsn, ops)


# -- the log file -----------------------------------------------------------

_FRAME = struct.Struct(">II")  # payload length, crc32


class WriteAheadLog:
    """Append-only framed log with fsync-on-commit or group commit.

    All appends happen under the database's write lock (commits are
    serialized by design), so the log keeps plain counters.  A fsync
    histogram may be attached (:meth:`bind_fsync_histogram`) to expose
    ``rdb.wal_fsync_seconds``.
    """

    def __init__(self, path: str, group_window_seconds: float = 0.0):
        self.path = path
        self.group_window_seconds = group_window_seconds
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.fsync_seconds_total = 0.0
        self._fsync_histogram = None
        self._pending_sync = False
        self._last_sync = 0.0
        created = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "ab", buffering=0)
        if created:
            self._file.write(MAGIC)
            self._sync()

    def bind_fsync_histogram(self, histogram) -> None:
        self._fsync_histogram = histogram

    @property
    def size_bytes(self) -> int:
        """Current log size on disk (header included)."""
        return self._file.tell() if not self._file.closed else 0

    # -- writing ------------------------------------------------------------

    def append(self, record: CommitRecord) -> int:
        """Frame, write, and (per policy) sync one commit record.

        Returns the framed size in bytes.  With a group-commit window
        the bytes always reach the OS here; the fsync may be deferred
        until the window elapses or :meth:`flush` runs.
        """
        payload = record.encode()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        self.records_appended += 1
        self.bytes_appended += len(frame)
        if self.group_window_seconds > 0.0:
            self._pending_sync = True
            if time.monotonic() - self._last_sync >= self.group_window_seconds:
                self._sync()
        else:
            self._sync()
        return len(frame)

    def _sync(self) -> None:
        started = time.perf_counter()
        self._file.flush()
        os.fsync(self._file.fileno())
        duration = time.perf_counter() - started
        self.fsyncs += 1
        self.fsync_seconds_total += duration
        self._pending_sync = False
        self._last_sync = time.monotonic()
        if self._fsync_histogram is not None:
            self._fsync_histogram.record(duration)

    def flush(self) -> None:
        """Force any group-commit-deferred bytes to disk."""
        if self._pending_sync:
            self._sync()

    def reset(self) -> None:
        """Truncate back to an empty log (after a snapshot checkpoint)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._file.write(MAGIC)
        self._sync()

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def stats(self) -> dict:
        return {
            "wal_records": self.records_appended,
            "wal_bytes": self.bytes_appended,
            "wal_fsyncs": self.fsyncs,
            "wal_fsync_ms_total": round(self.fsync_seconds_total * 1000.0, 3),
            "wal_group_window_ms": round(self.group_window_seconds * 1000.0, 3),
        }


def read_log(path: str):
    """Yield every intact :class:`CommitRecord` in ``path``, in order.

    Stops silently at the first torn or corrupt frame — the tail a
    crash mid-append leaves behind.  A missing or header-only file
    yields nothing.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return
    if not data.startswith(MAGIC):
        return
    position = len(MAGIC)
    total = len(data)
    while position + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, position)
        start = position + _FRAME.size
        end = start + length
        if end > total:
            return  # torn tail: the payload never finished writing
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt frame: treat as end of committed prefix
        try:
            yield CommitRecord.decode(payload)
        except DatabaseError:
            return
        position = end


def committed_prefix_boundaries(path: str) -> list[int]:
    """Byte offsets at which each commit record ends (oracle support).

    ``boundaries[k]`` is the file size up to and including record
    ``k``; a crash that preserves at least ``boundaries[k]`` bytes
    must recover every transaction up to record ``k``.
    """
    boundaries: list[int] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return boundaries
    if not data.startswith(MAGIC):
        return boundaries
    position = len(MAGIC)
    total = len(data)
    while position + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, position)
        end = position + _FRAME.size + length
        if end > total:
            break
        if zlib.crc32(data[position + _FRAME.size:end]) != crc:
            break
        boundaries.append(end)
        position = end
    return boundaries
