"""DB-API-flavoured connections, cursors, and a pool.

The generated business tier talks to the database the way the paper's
Java services talk to JDBC: acquire a connection from a pool, execute a
parameterized statement through a cursor, read the rows, release the
connection.  Positional (``?``) parameters are passed as a sequence,
named (``:name``) parameters as a mapping.

The pool is thread-safe: :meth:`ConnectionPool.acquire` blocks (with an
optional timeout) while worker threads hold every connection, and keeps
wait-time statistics the E7/E13 experiments read.  The old fail-fast
behaviour — exhaustion raises instead of waiting — stays available via
``acquire(block=False)``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping, Sequence

from repro.errors import DatabaseError
from repro.rdb.database import Database
from repro.rdb.executor import ResultSet


def normalize_params(params) -> dict:
    """Convert DB-API style parameters to the engine's name→value dict.

    Positional placeholders are numbered "1", "2", ... left to right.
    """
    if params is None:
        return {}
    if isinstance(params, Mapping):
        return {str(k): v for k, v in params.items()}
    if isinstance(params, Sequence) and not isinstance(params, (str, bytes)):
        return {str(i + 1): v for i, v in enumerate(params)}
    raise DatabaseError(f"unsupported parameter container {type(params).__name__}")


class Cursor:
    """A lightweight DB-API-style cursor.

    A cursor is bound to one *lease* of its connection: once the
    connection returns to the pool, the stale cursor fails loudly
    instead of silently operating on behalf of another borrower.
    """

    def __init__(self, connection: "Connection"):
        self.connection = connection
        self._lease = connection._lease
        self._result: ResultSet | None = None
        self.rowcount = -1
        self.lastrowid: int | None = None
        self._fetch_position = 0

    def _require_live(self) -> Database:
        database = self.connection._require_open()
        if self._lease != self.connection._lease:
            raise DatabaseError(
                "cursor is stale: its connection was returned to the pool"
            )
        return database

    def execute(self, sql: str, params=None) -> "Cursor":
        database = self._require_live()
        outcome = database.execute_outcome(sql, normalize_params(params))
        self._fetch_position = 0
        if isinstance(outcome.result, ResultSet):
            self._result = outcome.result
            self.rowcount = len(outcome.result)
        else:
            self._result = None
            self.rowcount = (
                outcome.result if isinstance(outcome.result, int) else -1
            )
        self.lastrowid = outcome.last_insert_id
        return self

    @property
    def description(self) -> list[tuple] | None:
        """Column metadata of the last SELECT, DB-API shaped."""
        if self._result is None:
            return None
        return [(name, None, None, None, None, None, None)
                for name in self._result.columns]

    @property
    def columns(self) -> list[str]:
        return [] if self._result is None else list(self._result.columns)

    def fetchone(self) -> dict | None:
        if self._result is None or self._fetch_position >= len(self._result.rows):
            return None
        row = self._result.rows[self._fetch_position]
        self._fetch_position += 1
        return row

    def fetchall(self) -> list[dict]:
        if self._result is None:
            return []
        rows = self._result.rows[self._fetch_position:]
        self._fetch_position = len(self._result.rows)
        return rows

    def fetchmany(self, size: int = 1) -> list[dict]:
        if self._result is None:
            return []
        rows = self._result.rows[self._fetch_position : self._fetch_position + size]
        self._fetch_position += len(rows)
        return rows


class Connection:
    """A handle to a database; closing it invalidates its cursors."""

    def __init__(self, database: Database, pool: "ConnectionPool | None" = None):
        self._database: Database | None = database
        self._pool = pool
        self._lease = 0  # bumped on every return to the pool

    def _require_open(self) -> Database:
        if self._database is None:
            raise DatabaseError("connection is closed")
        return self._database

    @property
    def database(self) -> Database:
        return self._require_open()

    def cursor(self) -> Cursor:
        self._require_open()
        if self._pool is not None and not self._pool._is_leased(self):
            raise DatabaseError(
                "connection is idle in its pool; acquire it before use"
            )
        return Cursor(self)

    def execute(self, sql: str, params=None) -> Cursor:
        return self.cursor().execute(sql, params)

    def close(self) -> None:
        """Return to the pool if pooled, otherwise invalidate.

        Closing is idempotent: a second ``close()`` (a ``finally`` block
        after an explicit release, say) is a no-op.
        """
        if self._pool is not None:
            self._pool.release(self)
        else:
            self._database = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ConnectionPool:
    """A fixed-size, thread-safe connection pool.

    ``acquire`` blocks while every connection is borrowed, waking as
    soon as one is released; ``acquire(block=False)`` restores the
    fail-fast exhaustion the E7 experiments watch, and ``timeout``
    bounds the wait.  Wait episodes and waited seconds are counted so
    benchmarks can report pool pressure.
    """

    def __init__(self, database: Database, size: int = 8):
        if size <= 0:
            raise DatabaseError("pool size must be positive")
        self.database = database
        self.size = size
        self._cond = threading.Condition()
        self._idle: list[Connection] = [Connection(database, self) for _ in range(size)]
        self._owned: set[int] = {id(c) for c in self._idle}
        self._in_use: set[int] = set()
        self.acquired_total = 0
        self.peak_in_use = 0
        #: acquires that found the pool empty and had to wait
        self.wait_count = 0
        #: cumulative seconds spent waiting for a free connection
        self.total_wait_seconds = 0.0
        #: waits that gave up (timeout expired or block=False)
        self.exhausted_failures = 0
        # observability (bound by the runtime context): wait-time
        # histogram plus an in-use gauge; None keeps both sites no-ops
        self._wait_histogram = None
        self._in_use_gauge = None
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Attach the application's metrics registry; waits feed the
        ``rdb.pool.wait_seconds`` histogram and every acquire/release
        updates the ``rdb.pool.in_use`` gauge."""
        self._obs = obs
        self._wait_histogram = obs.metrics.histogram("rdb.pool.wait_seconds")
        self._in_use_gauge = obs.metrics.gauge("rdb.pool.in_use")
        obs.metrics.register_collector("rdb.pool", self.wait_stats)

    def _observing(self) -> bool:
        return self._obs is not None and self._obs.enabled

    def acquire(self, timeout: float | None = None,
                block: bool = True) -> Connection:
        waited = None
        with self._cond:
            if not self._idle:
                if not block:
                    self.exhausted_failures += 1
                    raise DatabaseError(
                        f"connection pool exhausted ({self.size} connections in use)"
                    )
                started = time.monotonic()
                deadline = None if timeout is None else started + timeout
                self.wait_count += 1
                while not self._idle:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self.total_wait_seconds += time.monotonic() - started
                        self.exhausted_failures += 1
                        raise DatabaseError(
                            f"connection pool exhausted ({self.size} connections "
                            f"in use; timed out after {timeout:.3f}s)"
                        )
                    self._cond.wait(remaining)
                waited = time.monotonic() - started
                self.total_wait_seconds += waited
            connection = self._idle.pop()
            self._in_use.add(id(connection))
            self.acquired_total += 1
            self.peak_in_use = max(self.peak_in_use, len(self._in_use))
            in_use_now = len(self._in_use)
        if self._observing():
            self._in_use_gauge.set(in_use_now)
            if waited is not None:
                self._wait_histogram.record(waited)
        return connection

    def release(self, connection: Connection) -> None:
        with self._cond:
            if id(connection) not in self._owned:
                raise DatabaseError(
                    "releasing a connection not acquired from this pool"
                )
            if id(connection) not in self._in_use:
                return  # double close: idempotent
            connection._lease += 1  # outstanding cursors go stale
            self._in_use.remove(id(connection))
            self._idle.append(connection)
            self._cond.notify()
            in_use_now = len(self._in_use)
        if self._observing():
            self._in_use_gauge.set(in_use_now)

    def _is_leased(self, connection: Connection) -> bool:
        with self._cond:
            return id(connection) in self._in_use

    @property
    def in_use(self) -> int:
        with self._cond:
            return len(self._in_use)

    def wait_stats(self) -> dict:
        """Pool-pressure counters for experiment reports."""
        with self._cond:
            return {
                "size": self.size,
                "in_use": len(self._in_use),
                "acquired_total": self.acquired_total,
                "peak_in_use": self.peak_in_use,
                "wait_count": self.wait_count,
                "total_wait_seconds": self.total_wait_seconds,
                "exhausted_failures": self.exhausted_failures,
            }
