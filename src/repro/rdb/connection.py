"""DB-API-flavoured connections, cursors, and a pool.

The generated business tier talks to the database the way the paper's
Java services talk to JDBC: acquire a connection from a pool, execute a
parameterized statement through a cursor, read the rows, release the
connection.  Positional (``?``) parameters are passed as a sequence,
named (``:name``) parameters as a mapping.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import DatabaseError
from repro.rdb.database import Database
from repro.rdb.executor import ResultSet


def normalize_params(params) -> dict:
    """Convert DB-API style parameters to the engine's name→value dict.

    Positional placeholders are numbered "1", "2", ... left to right.
    """
    if params is None:
        return {}
    if isinstance(params, Mapping):
        return {str(k): v for k, v in params.items()}
    if isinstance(params, Sequence) and not isinstance(params, (str, bytes)):
        return {str(i + 1): v for i, v in enumerate(params)}
    raise DatabaseError(f"unsupported parameter container {type(params).__name__}")


class Cursor:
    """A lightweight DB-API-style cursor."""

    def __init__(self, connection: "Connection"):
        self.connection = connection
        self._result: ResultSet | None = None
        self.rowcount = -1
        self.lastrowid: int | None = None
        self._fetch_position = 0

    def execute(self, sql: str, params=None) -> "Cursor":
        database = self.connection._require_open()
        outcome = database.execute(sql, normalize_params(params))
        self._fetch_position = 0
        if isinstance(outcome, ResultSet):
            self._result = outcome
            self.rowcount = len(outcome)
        else:
            self._result = None
            self.rowcount = outcome if isinstance(outcome, int) else -1
        self.lastrowid = database.last_insert_id
        return self

    @property
    def description(self) -> list[tuple] | None:
        """Column metadata of the last SELECT, DB-API shaped."""
        if self._result is None:
            return None
        return [(name, None, None, None, None, None, None)
                for name in self._result.columns]

    @property
    def columns(self) -> list[str]:
        return [] if self._result is None else list(self._result.columns)

    def fetchone(self) -> dict | None:
        if self._result is None or self._fetch_position >= len(self._result.rows):
            return None
        row = self._result.rows[self._fetch_position]
        self._fetch_position += 1
        return row

    def fetchall(self) -> list[dict]:
        if self._result is None:
            return []
        rows = self._result.rows[self._fetch_position:]
        self._fetch_position = len(self._result.rows)
        return rows

    def fetchmany(self, size: int = 1) -> list[dict]:
        if self._result is None:
            return []
        rows = self._result.rows[self._fetch_position : self._fetch_position + size]
        self._fetch_position += len(rows)
        return rows


class Connection:
    """A handle to a database; closing it invalidates its cursors."""

    def __init__(self, database: Database, pool: "ConnectionPool | None" = None):
        self._database: Database | None = database
        self._pool = pool

    def _require_open(self) -> Database:
        if self._database is None:
            raise DatabaseError("connection is closed")
        return self._database

    @property
    def database(self) -> Database:
        return self._require_open()

    def cursor(self) -> Cursor:
        self._require_open()
        return Cursor(self)

    def execute(self, sql: str, params=None) -> Cursor:
        return self.cursor().execute(sql, params)

    def close(self) -> None:
        """Return to the pool if pooled, otherwise invalidate."""
        if self._pool is not None:
            self._pool.release(self)
        else:
            self._database = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ConnectionPool:
    """A fixed-size connection pool.

    ``acquire`` raises when the pool is exhausted — the application
    server sizes its pools explicitly, and exhaustion is a signal the
    experiments watch, not something to paper over.
    """

    def __init__(self, database: Database, size: int = 8):
        if size <= 0:
            raise DatabaseError("pool size must be positive")
        self.database = database
        self.size = size
        self._idle: list[Connection] = [Connection(database, self) for _ in range(size)]
        self._in_use: set[int] = set()
        self.acquired_total = 0
        self.peak_in_use = 0

    def acquire(self) -> Connection:
        if not self._idle:
            raise DatabaseError(
                f"connection pool exhausted ({self.size} connections in use)"
            )
        connection = self._idle.pop()
        self._in_use.add(id(connection))
        self.acquired_total += 1
        self.peak_in_use = max(self.peak_in_use, len(self._in_use))
        return connection

    def release(self, connection: Connection) -> None:
        if id(connection) not in self._in_use:
            raise DatabaseError("releasing a connection not acquired from this pool")
        self._in_use.remove(id(connection))
        self._idle.append(connection)

    @property
    def in_use(self) -> int:
        return len(self._in_use)
