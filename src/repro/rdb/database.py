"""The engine facade.

:class:`Database` owns every table, executes statements (parsed or raw
SQL), enforces foreign keys, caches SELECT plans, and keeps execution
statistics.  The statistics matter to the reproduction: experiment E5
counts the *data-extraction queries actually executed* to show what the
unit-bean cache spares (paper §6).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

from repro.errors import IntegrityError, QueryError, SchemaError
from repro.rdb.adaptive import AdaptiveController
from repro.rdb.engine import DurableEngine, MemoryEngine, StorageEngine
from repro.rdb.executor import ResultSet, RowScope
from repro.rdb.planner import PlannerFeatures, SelectPlan
from repro.rdb.schema import ForeignKey, TableSchema
from repro.rdb.sqlparser import (
    Analyze,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Statement,
    Update,
    parse_sql,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import current_span
from repro.rdb.statistics import TableStatistics, collect_statistics
from repro.rdb.storage import TableStore
from repro.rdb.wal import (
    OP_ANALYZE,
    OP_CREATE_INDEX,
    OP_CREATE_TABLE,
    OP_DROP_TABLE,
)
from repro.util.concurrency import AtomicCounters, ReadWriteLock

#: sentinel returned by :func:`_ddl_tables` when a replicated ANALYZE
#: covered every table — the plan cache must be cleared wholesale
ALL_TABLES = object()


def _ddl_tables(ops) -> "set[str] | object":
    """The tables whose cached plans a replicated record invalidates."""
    tables: set[str] = set()
    for op in ops:
        opcode = op[0]
        if opcode == OP_CREATE_TABLE:
            tables.add(op[1].name)
        elif opcode in (OP_CREATE_INDEX, OP_DROP_TABLE):
            tables.add(op[1])
        elif opcode == OP_ANALYZE:
            if op[1] is None:
                return ALL_TABLES
            tables.add(op[1])
    return tables


@dataclass
class DatabaseStats(AtomicCounters):
    """Cumulative statement counters (resettable).

    SELECT counters are bumped through :meth:`AtomicCounters.increment`
    because reads run concurrently; write counters are serialized by the
    database's write lock."""

    selects: int = 0
    #: selects served by a compiled (or mixed) plan vs the interpreter
    selects_compiled: int = 0
    selects_interpreted: int = 0
    #: selects served by the columnar batch pipeline (a subset of
    #: neither of the above: the three buckets partition ``selects``)
    selects_columnar: int = 0
    #: selects whose SQL text hit the plan cache before parsing
    prepared_reuse: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    ddl: int = 0
    analyzes: int = 0
    rows_read: int = 0
    per_table_writes: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.selects = 0
        self.selects_compiled = 0
        self.selects_interpreted = 0
        self.selects_columnar = 0
        self.prepared_reuse = 0
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.ddl = 0
        self.analyzes = 0
        self.rows_read = 0
        self.per_table_writes = {}

    def record_write(self, table: str) -> None:
        self.per_table_writes[table] = self.per_table_writes.get(table, 0) + 1


@dataclass
class ExecutionOutcome:
    """What one statement execution produced, self-contained.

    Cursors read ``last_insert_id`` from here instead of from shared
    database state, so concurrent inserts on different connections never
    see each other's ids.
    """

    result: "ResultSet | int | None"
    last_insert_id: int | None = None


class Database:
    """A relational database over a pluggable storage engine.

    The logical layer (this class: parsing, planning, compiled
    execution, constraint enforcement) is separated from storage: a
    :class:`~repro.rdb.engine.StorageEngine` owns the tables, indexes,
    and transactions.  The default :class:`~repro.rdb.engine.MemoryEngine`
    reproduces the seed's purely in-memory behaviour; ``Database.open``
    builds a :class:`~repro.rdb.engine.DurableEngine` with write-ahead
    logging, snapshots, and crash recovery.

    Thread safety: a readers-writer lock lets data-extraction queries
    (SELECT) run concurrently while DML, DDL, and undo-log transactions
    hold the write side alone.  A transaction holds the write lock from
    ``begin`` until ``commit``/``rollback``, so its intermediate states
    are invisible to readers.  ``last_insert_id`` is thread-local.
    """

    def __init__(self, name: str = "main",
                 engine: StorageEngine | None = None):
        self.name = name
        self.engine = engine if engine is not None else MemoryEngine()
        self.stats = DatabaseStats()
        self._plan_cache: dict[str, SelectPlan] = {}
        self._plan_lock = threading.Lock()
        self._rwlock = ReadWriteLock()
        #: signalled whenever the engine's LSN advances by replication
        #: apply; :meth:`wait_for_lsn` blocks on it (LSN wait tokens)
        self._lsn_cond = threading.Condition()
        self._exec_local = threading.local()
        #: simulated network/disk round-trip per statement.  The paper's
        #: data tier is a separate machine; sleeping here (outside the
        #: locks) is what worker threads overlap, the way real threads
        #: overlap JDBC waits.  Benchmarks set it; it defaults to off.
        self.io_delay: float = 0.0
        #: statements over the threshold land here with their chosen
        #: access path; always present, cheap until something is slow
        self.slow_log = SlowQueryLog()
        #: the application's Observability root, bound by the runtime
        #: context; None keeps every metrics site a no-op
        self.obs = None
        self._stmt_histogram = None
        self._compile_histogram = None
        #: query-compilation accounting (repro.rdb.compile): plans by
        #: mode, interpreter fallbacks inside compiled plans, and total
        #: time spent generating code.  Written under no lock — same
        #: tolerance as every other observability counter.
        self._compile_stats = {
            "plans_compiled": 0,
            "plans_interpreted": 0,
            "plans_columnar": 0,
            "expr_fallbacks": 0,
            "compile_seconds_total": 0.0,
        }
        #: the adaptive-execution feedback loop (repro.rdb.adaptive):
        #: cardinality ledgers per cached plan, learned selectivities
        #: the planner consults, drift-triggered replan/re-ANALYZE
        self.adaptive = AdaptiveController(self)

    # -- storage-engine boundary -------------------------------------------

    @property
    def tables(self) -> dict[str, TableStore]:
        """The engine's table registry (the planner reads it directly)."""
        return self.engine.tables

    @property
    def commit_stream(self):
        """The engine's commit stream — subscribe for invalidation or
        (eventually) replication."""
        return self.engine.commit_stream

    @classmethod
    def open(cls, path: str, name: str = "main",
             group_commit_window: float = 0.0,
             checkpoint_bytes: int | None = None) -> "Database":
        """Open (or create) a durable database under directory ``path``.

        Construction recovers: the latest snapshot is loaded and the
        committed WAL suffix replayed, so the returned database holds
        exactly the state of the longest committed prefix on disk.
        """
        return cls(name=name, engine=DurableEngine(
            path, group_commit_window=group_commit_window,
            checkpoint_bytes=checkpoint_bytes,
        ))

    def close(self) -> None:
        """Flush and close the storage engine.  Idempotent: closing an
        already-closed database is a no-op, so shutdown paths can call
        it unconditionally."""
        self.engine.close()

    @property
    def closed(self) -> bool:
        return self.engine.closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def checkpoint(self) -> int:
        """Snapshot + WAL truncation on a durable engine (no-op size 0
        on the in-memory engine)."""
        checkpoint = getattr(self.engine, "checkpoint", None)
        if checkpoint is None:
            return 0
        with self._rwlock.write_locked():
            return checkpoint()

    def storage_stats(self) -> dict:
        """Engine-level durability counters for ``/_status``."""
        return self.engine.observability_stats()

    @contextlib.contextmanager
    def _write_scope(self):
        """Write lock + engine commit scope for one top-level write.

        The commit event (if the scope committed — i.e. outside an
        explicit transaction) is published *after* the write lock is
        released, so invalidation subscribers never run on the engine's
        critical section.
        """
        self._rwlock.acquire_write()
        event = None
        try:
            with self.engine.statement_scope() as scope:
                yield
            event = scope.event
        finally:
            self._rwlock.release_write()
        if event is not None:
            self.engine.commit_stream.publish(event)

    def bind_observability(self, obs) -> None:
        """Attach the application's metrics registry (the statement
        histogram is cached here so the hot path never consults the
        registry dictionary)."""
        self.obs = obs
        self._stmt_histogram = obs.metrics.histogram("rdb.statement_seconds")
        self._compile_histogram = obs.metrics.histogram("rdb.compile_seconds")
        self.engine.bind_observability(obs)

    def observability_stats(self) -> dict:
        """Statement counters plus slow-log summary for ``/_status``."""
        compile_stats = self._compile_stats
        return {
            "selects": self.stats.selects,
            "selects_compiled": self.stats.selects_compiled,
            "selects_interpreted": self.stats.selects_interpreted,
            "selects_columnar": self.stats.selects_columnar,
            "prepared_reuse": self.stats.prepared_reuse,
            "inserts": self.stats.inserts,
            "updates": self.stats.updates,
            "deletes": self.stats.deletes,
            "rows_read": self.stats.rows_read,
            "plan_cache_size": len(self._plan_cache),
            "plans_compiled": compile_stats["plans_compiled"],
            "plans_interpreted": compile_stats["plans_interpreted"],
            "plans_columnar": compile_stats["plans_columnar"],
            "compile_fallback_exprs": compile_stats["expr_fallbacks"],
            "compile_ms_total": round(
                compile_stats["compile_seconds_total"] * 1000.0, 3
            ),
            "columnar": self._columnar_stats(),
            "adaptive": self.adaptive.stats(),
            "slow_queries": self.slow_log.stats(),
        }

    def _columnar_stats(self) -> dict:
        """Column-store health across tables, for ``/_status``: how many
        stores are materialized, scan/batch volume, the dictionary
        encoding hit ratio, and the current/worst column-sync lag."""
        totals = {
            "tables_built": 0,
            "scans": 0,
            "batches_scanned": 0,
            "rebuilds": 0,
            "dropped_rebuilds": 0,
            "synced_ops": 0,
            "pending_ops": 0,
            "max_pending": 0,
            "dict_columns": 0,
        }
        dict_hits = dict_misses = 0
        for store in list(self.tables.values()):
            snapshot = store.column_store.stats()
            totals["tables_built"] += 1 if snapshot["built"] else 0
            totals["scans"] += snapshot["scans"]
            totals["batches_scanned"] += snapshot["batches_scanned"]
            totals["rebuilds"] += snapshot["builds"] + snapshot["rebuilds"]
            totals["dropped_rebuilds"] += snapshot["dropped_rebuilds"]
            totals["synced_ops"] += snapshot["synced_ops"]
            totals["pending_ops"] += snapshot["pending_ops"]
            totals["max_pending"] = max(
                totals["max_pending"], snapshot["max_pending"]
            )
            totals["dict_columns"] += snapshot["dict_columns"]
            dict_hits += snapshot["dict_hits"]
            dict_misses += snapshot["dict_misses"]
        encoded = dict_hits + dict_misses
        totals["dict_hit_ratio"] = (
            round(dict_hits / encoded, 4) if encoded else None
        )
        return totals

    def _note_plan_built(self, plan: SelectPlan) -> SelectPlan:
        """Record one plan construction in the compile accounting."""
        stats = self._compile_stats
        if plan.exec_mode == "interpreted":
            stats["plans_interpreted"] += 1
        else:
            if plan.exec_mode == "columnar":
                stats["plans_columnar"] += 1
            stats["plans_compiled"] += 1
            stats["compile_seconds_total"] += plan.compile_seconds
            if plan.compile_stats is not None:
                stats["expr_fallbacks"] += plan.compile_stats["interpreted"]
            if self._compile_histogram is not None:
                obs = self.obs
                if obs is not None and obs.enabled:
                    self._compile_histogram.record(plan.compile_seconds)
        return plan

    def _observe_statement(self, kind: str, started: float, sql: str,
                           plan: SelectPlan | None = None,
                           rows: int | None = None) -> None:
        """Per-statement observability: histogram, trace span, slow log.

        Costs two clock reads plus one early-out comparison when no
        trace is active and the statement was fast."""
        duration = time.perf_counter() - started
        obs = self.obs
        if obs is not None and obs.enabled:
            self._stmt_histogram.record(duration)
        parent = current_span()
        slow = duration >= self.slow_log.threshold_seconds
        if parent is None and not slow:
            return
        access = plan.access_summary() if plan is not None else None
        mode = plan.exec_mode if plan is not None else None
        if parent is not None:
            tags: dict = {"kind": kind}
            if access is not None:
                tags["access"] = access
            if mode is not None:
                tags["mode"] = mode
            if rows is not None:
                tags["rows"] = rows
            parent.attach(f"rdb.{kind}", "rdb", started, duration, tags)
        if slow:
            self.slow_log.observe(sql, duration, access=access, mode=mode)

    # -- per-thread execution state ---------------------------------------------

    @property
    def last_insert_id(self) -> int | None:
        """The auto-increment id of the current *thread's* last insert."""
        return getattr(self._exec_local, "last_insert_id", None)

    @last_insert_id.setter
    def last_insert_id(self, value: int | None) -> None:
        self._exec_local.last_insert_id = value

    # -- transactions -----------------------------------------------------------
    # A single-level undo-log transaction (the autocommit JDBC world the
    # generated services target, plus explicit atomicity for operations).
    # DDL is not transactional; auto-increment counters do not roll back
    # (like real sequences).  The transaction owns the write lock for its
    # whole extent, so concurrent readers either see none or all of it.

    def begin(self) -> None:
        self._rwlock.acquire_write()
        try:
            self.engine.begin()
        except BaseException:
            self._rwlock.release_write()
            raise

    def _require_transaction_owner(self, verb: str) -> None:
        if not self._rwlock.write_held_by_current_thread():
            raise QueryError(
                f"cannot {verb}: the transaction belongs to another thread"
            )

    def commit(self) -> None:
        if not self.engine.in_transaction:
            raise QueryError("no active transaction to commit")
        self._require_transaction_owner("commit")
        try:
            event = self.engine.commit()
        finally:
            self._rwlock.release_write()
        if event is not None:
            self.engine.commit_stream.publish(event)

    def rollback(self) -> None:
        if not self.engine.in_transaction:
            raise QueryError("no active transaction to roll back")
        self._require_transaction_owner("roll back")
        try:
            # DDL is not transactional: the engine undoes the DML but
            # commits any schema changes as their own record.
            event = self.engine.rollback()
        finally:
            self._rwlock.release_write()
        if event is not None:
            self.engine.commit_stream.publish(event)

    @contextlib.contextmanager
    def transaction(self):
        """``with db.transaction(): ...`` — commit on success, roll back
        on any exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    @property
    def in_transaction(self) -> bool:
        return self.engine.in_transaction

    # -- schema ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> TableStore:
        with self._write_scope():
            if schema.name in self.tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            for fkey in schema.foreign_keys:
                self._check_fk_target(schema.name, fkey)
            store = TableStore(schema)
            self.tables[schema.name] = store
            self.engine.note_create_table(schema)
            # No plan invalidation: a plan referencing an unknown table
            # never compiled, so no cached plan can involve a new table.
            return store

    def _check_fk_target(self, table: str, fkey: ForeignKey) -> None:
        # Self-references are resolved against the schema being created,
        # which the caller has already validated column-wise.
        if fkey.target_table == table:
            return
        target = self.tables.get(fkey.target_table)
        if target is None:
            raise SchemaError(
                f"foreign key of {table!r} references unknown table "
                f"{fkey.target_table!r}"
            )
        for column in fkey.target_columns:
            if not target.schema.has_column(column):
                raise SchemaError(
                    f"foreign key of {table!r} references unknown column "
                    f"{fkey.target_table}.{column}"
                )

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._write_scope():
            if name not in self.tables:
                if if_exists:
                    return
                raise SchemaError(f"no table {name!r} to drop")
            for other_name, other in self.tables.items():
                if other_name == name:
                    continue
                for fkey in other.schema.foreign_keys:
                    if fkey.target_table == name:
                        raise SchemaError(
                            f"cannot drop {name!r}: referenced by {other_name!r}"
                        )
            del self.tables[name]
            self.engine.note_drop_table(name)
            self._invalidate_plans({name})

    def table(self, name: str) -> TableStore:
        store = self.tables.get(name)
        if store is None:
            raise SchemaError(f"unknown table {name!r}")
        return store

    # -- statement execution -----------------------------------------------------

    def execute(self, sql: str | Statement, params: dict | None = None):
        """Execute SQL text or a pre-parsed statement.

        Returns a :class:`ResultSet` for SELECT, the affected row count
        for DML, and ``None`` for DDL.

        Prepared-statement reuse: SQL text already in the plan cache is
        known to be a SELECT with a ready (compiled) plan, so the parse
        is skipped entirely — repeated unit-descriptor queries pay one
        dict probe before execution.
        """
        if isinstance(sql, str):
            with self._plan_lock:
                reusable = sql in self._plan_cache
            if reusable:
                self.stats.increment("prepared_reuse")
                return self._execute_select(None, sql, params)
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, Select):
            return self._execute_select(
                statement, sql if isinstance(sql, str) else None, params
            )
        kind = type(statement).__name__.lower()
        sql_text = sql if isinstance(sql, str) else kind
        started = time.perf_counter()  # spans include the simulated wire
        if self.io_delay:
            time.sleep(self.io_delay)  # the wire, not the engine: no lock held
        try:
            with self._write_scope():
                if isinstance(statement, Insert):
                    return self._execute_insert(statement, params or {})
                if isinstance(statement, Update):
                    return self._execute_update(statement, params or {})
                if isinstance(statement, Delete):
                    return self._execute_delete(statement, params or {})
                if isinstance(statement, CreateTable):
                    self.create_table(statement.schema)
                    self.stats.ddl += 1
                    return None
                if isinstance(statement, CreateIndex):
                    self.table(statement.table).add_index(statement.index)
                    self.engine.note_create_index(
                        statement.table, statement.index
                    )
                    self.stats.ddl += 1
                    self._invalidate_plans({statement.table})
                    return None
                if isinstance(statement, DropTable):
                    self.drop_table(statement.table, statement.if_exists)
                    self.stats.ddl += 1
                    return None
                if isinstance(statement, Analyze):
                    self._analyze_locked(statement.table)
                    return None
        finally:
            self._observe_statement(kind, started, sql_text)
        raise QueryError(f"unsupported statement {statement!r}")

    def execute_outcome(self, sql: str | Statement,
                        params: dict | None = None) -> ExecutionOutcome:
        """Like :meth:`execute`, but packages the per-execution state
        (result plus ``last_insert_id``) so callers need not read shared
        attributes afterwards."""
        result = self.execute(sql, params)
        return ExecutionOutcome(result=result,
                                last_insert_id=self.last_insert_id)

    def query(self, sql: str, params: dict | None = None) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise QueryError(f"expected a SELECT: {sql!r}")
        return result

    def _execute_select(self, statement: Select | None, cache_key: str | None,
                        params: dict | None) -> ResultSet:
        """Execute a SELECT.  ``statement`` may be ``None`` when
        ``cache_key`` is the raw SQL text (the prepared-statement fast
        path); a cache miss — e.g. the plan was invalidated between the
        caller's probe and here — re-parses the text under the read
        lock, so a stale hint can cost a parse but never a wrong or
        poisoned plan."""
        # Queued drift re-ANALYZEs (and growth checks, when the AST is in
        # hand) run first — they need the write lock, which cannot be
        # taken once we hold the read side below.
        self.adaptive.preflight(statement)
        started = time.perf_counter()  # spans include the simulated wire
        if self.io_delay:
            time.sleep(self.io_delay)  # the wire, not the engine: no lock held
        with self._rwlock.read_locked():
            plan = self._plan(statement, cache_key)
            result = plan.execute(params)
        if cache_key is not None:
            self.adaptive.observe(cache_key, plan)
        self.stats.increment("selects")
        if plan.exec_mode == "interpreted":
            self.stats.increment("selects_interpreted")
        elif plan.exec_mode == "columnar":
            self.stats.increment("selects_columnar")
        else:
            self.stats.increment("selects_compiled")
        self.stats.increment("rows_read", len(result))
        self._observe_statement(
            "select", started,
            cache_key or f"<select on {','.join(sorted(plan.tables))}>",
            plan=plan, rows=len(result),
        )
        return result

    def query_statement(self, select: Select, params: dict | None = None,
                        cache_key: str | None = None) -> ResultSet:
        """Execute a pre-built SELECT AST, optionally caching its plan
        under an explicit key (the service tier's batch loader rewrites
        descriptor queries into ``IN``-list ASTs and reuses their plans
        across requests)."""
        return self._execute_select(select, cache_key, params)

    def _plan(self, select: Select | None, cache_key: str | None) -> SelectPlan:
        if cache_key is not None:
            with self._plan_lock:
                cached = self._plan_cache.get(cache_key)
            if cached is not None:
                return cached
        if select is None:
            # Fast-path cache miss: the caller skipped parsing on the
            # strength of a cache probe that has since been invalidated.
            statement = parse_sql(cache_key)
            if not isinstance(statement, Select):
                raise QueryError(f"expected a SELECT: {cache_key!r}")
            select = statement
        plan = self._note_plan_built(
            SelectPlan(select, self.tables, feedback=self.adaptive.memory)
        )
        if cache_key is not None:
            with self._plan_lock:
                # Concurrent planners of the same statement: first in wins,
                # so repeated executions share one plan object.
                plan = self._plan_cache.setdefault(cache_key, plan)
        return plan

    def _invalidate_plans(self, tables: set[str]) -> None:
        """Drop cached plans that read any of ``tables`` — the scoped
        replacement for wholesale cache clearing, so DDL or ANALYZE on
        one table leaves every other table's compiled plans warm."""
        with self._plan_lock:
            stale = [
                key for key, plan in self._plan_cache.items()
                if plan.tables & tables
            ]
            for key in stale:
                del self._plan_cache[key]

    def _drop_plan(self, cache_key: str) -> None:
        """Drop one cached plan (adaptive drift marked it stale); the
        statement re-plans — and recompiles — on its next execution."""
        with self._plan_lock:
            self._plan_cache.pop(cache_key, None)

    def cached_plan_count(self) -> int:
        with self._plan_lock:
            return len(self._plan_cache)

    # -- replication ----------------------------------------------------------
    # The replica half of WAL shipping (repro.rdb.replication): shipped
    # records and bootstrap snapshots enter the database here, under the
    # same write lock and publish-after-release discipline as local
    # writes, so readers and cache invalidation see replicated commits
    # exactly the way the primary's own readers see local ones.

    @property
    def last_lsn(self) -> int:
        """The engine's last committed (or last applied) LSN.

        On a primary this is the *write token* a router hands to the
        client after a write; on a replica, the replay position a wait
        token is compared against."""
        return self.engine.last_lsn

    def apply_replicated(self, record) -> "CommitEvent | None":
        """Apply one shipped commit record to a replica database.

        Returns the published :class:`~repro.rdb.engine.CommitEvent`,
        or ``None`` when the record was a duplicate (normal after a
        reconnect — shipping is at-least-once, application is
        idempotent).  DDL the record carries invalidates the affected
        cached plans, the same scoping local DDL gets.
        """
        self._rwlock.acquire_write()
        try:
            event = self.engine.apply_commit_record(record)
            if event is not None:
                ddl_tables = _ddl_tables(record.ops)
                if ddl_tables is ALL_TABLES:
                    with self._plan_lock:
                        self._plan_cache.clear()
                elif ddl_tables:
                    self._invalidate_plans(ddl_tables)
        finally:
            self._rwlock.release_write()
        if event is not None:
            self.engine.commit_stream.publish(event)
            with self._lsn_cond:
                self._lsn_cond.notify_all()
        return event

    def install_replica_state(self, lsn: int, tables: dict) -> None:
        """Replace a replica's whole state with a bootstrap snapshot.

        Every cached plan is dropped (they hold references to the old
        table stores) and a ``bootstrap`` commit event is published so
        every cache level flushes rather than invalidating per entity.
        """
        self._rwlock.acquire_write()
        try:
            event = self.engine.install_tables(lsn, tables)
            with self._plan_lock:
                self._plan_cache.clear()
        finally:
            self._rwlock.release_write()
        self.engine.commit_stream.publish(event)
        with self._lsn_cond:
            self._lsn_cond.notify_all()

    def wait_for_lsn(self, lsn: int, timeout: float = 5.0) -> bool:
        """Block until ``last_lsn >= lsn``; the read side of an LSN wait
        token.  True on success, False on timeout (the caller decides —
        the fleet's replica gate answers 503 rather than serve a read
        older than the client's own write)."""
        deadline = time.monotonic() + timeout
        with self._lsn_cond:
            while self.engine.last_lsn < lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._lsn_cond.wait(remaining)
        return True

    def explain(self, sql: str, params: dict | None = None,
                analyze: bool = False) -> str:
        """EXPLAIN-style plan text for a SELECT (debugging aid for the
        §6 descriptor-query tuning workflow); the cost-based plan comes
        annotated with estimated rows/cost per operator.

        ``analyze=True`` executes the statement first (with ``params``)
        and annotates each operator with its actual row count and
        q-error — the misestimate-debugging view (see
        docs/OBSERVABILITY.md)."""
        plan = self.prepare(sql)
        if analyze:
            with self._rwlock.read_locked():
                plan.execute(params)
        return plan.explain(analyze=analyze)

    def prepare(self, sql: str, optimize: bool = True,
                compiled: bool | None = None,
                columnar: bool | None = None,
                features: PlannerFeatures | None = None) -> SelectPlan:
        """Compile a SELECT once for repeated execution (generic
        services).  ``optimize=False`` builds the naive seed plan — full
        scans, declared join order, interpreted evaluation — bypassing
        the plan cache; E14 uses it as the before/after baseline.
        ``compiled=False`` builds the *optimized* plan but keeps
        expression evaluation interpreted (also uncached) — E17's
        apples-to-apples baseline for the compilation layer alone.
        ``columnar`` overrides the cost model's layout choice: ``True``
        forces the batch pipeline when the plan shape allows it,
        ``False`` pins row execution (both uncached, like the other
        baseline modes); ``None`` lets the cost model decide and caches
        normally — E20 and the four-way oracle drive all four modes.
        ``features`` switches individual planner decisions off (always
        uncached) — the plan-space scanner's probe surface."""
        statement = parse_sql(sql)
        if not isinstance(statement, Select):
            raise QueryError(f"prepare() only accepts SELECT: {sql!r}")
        if not optimize:
            return self._note_plan_built(
                SelectPlan(statement, self.tables, optimize=False)
            )
        # Growth-triggered (and queued drift) re-ANALYZE before planning,
        # so bulk loads stop planning against empty-table statistics.
        self.adaptive.preflight(statement)
        if compiled is False or columnar is not None or features is not None:
            return self._note_plan_built(
                SelectPlan(statement, self.tables, compiled=compiled,
                           columnar=columnar, feedback=self.adaptive.memory,
                           features=features)
            )
        return self._plan(statement, sql)

    # -- statistics -----------------------------------------------------------

    def analyze(self, table: str | None = None) -> None:
        """Collect planner statistics for ``table`` (or every table),
        then invalidate the cached plans that read the analyzed tables
        so they re-plan against the fresh distributions."""
        with self._write_scope():
            self._analyze_locked(table)

    def _analyze_locked(self, table: str | None) -> None:
        targets = [self.table(table)] if table is not None else list(
            self.tables.values()
        )
        analyzed: set[str] = set()
        for store in targets:
            store.statistics = collect_statistics(store)
            analyzed.add(store.schema.name)
        self.engine.note_analyze(table)
        self.stats.analyzes += 1
        self._invalidate_plans(analyzed)

    def statistics_for(self, table: str) -> TableStatistics | None:
        return self.table(table).statistics

    # -- DML -----------------------------------------------------------------------

    def insert_row(self, table: str, values: dict) -> dict:
        """Insert one row given a column→value mapping; returns the stored
        row (with auto-increment/default values filled in)."""
        with self._write_scope():
            store = self.table(table)
            row = store.prepare_row(values)
            self._check_foreign_keys_outgoing(store, row)
            row_id = store.insert_prepared(row)
            self.engine.note_insert(table, row_id, row)
            self.stats.inserts += 1
            self.stats.record_write(table)
            auto = next(
                (c.name for c in store.schema.columns if c.auto_increment), None
            )
            self.last_insert_id = row[auto] if auto else None
            return dict(row)

    def insert_rows(self, table: str, rows: list[dict]) -> int:
        for values in rows:
            self.insert_row(table, values)
        return len(rows)

    def _execute_insert(self, statement: Insert, params: dict) -> int:
        scope = RowScope({}, {})
        count = 0
        for value_exprs in statement.rows:
            values = {
                column: expr.evaluate(scope, params)
                for column, expr in zip(statement.columns, value_exprs)
            }
            self.insert_row(statement.table, values)
            count += 1
        return count

    def _match_rows(self, store: TableStore, where, params: dict) -> list[int]:
        columns = {store.schema.name: store.schema.column_names}
        matches = []
        for row_id, row in list(store.rows.items()):
            scope = RowScope({store.schema.name: row}, columns)
            if where is None or where.evaluate(scope, params) is True:
                matches.append(row_id)
        return matches

    def _execute_update(self, statement: Update, params: dict) -> int:
        store = self.table(statement.table)
        columns = {store.schema.name: store.schema.column_names}
        row_ids = self._match_rows(store, statement.where, params)
        for row_id in row_ids:
            row = store.rows[row_id]
            scope = RowScope({store.schema.name: row}, columns)
            changes = {
                column: expr.evaluate(scope, params)
                for column, expr in statement.assignments
            }
            old = dict(row)
            new = store.update_row(row_id, changes)
            try:
                self._check_foreign_keys_outgoing(store, new)
                self._check_referencing_after_update(store, old, new)
            except IntegrityError:
                store.force_row(row_id, old)  # roll the row back
                raise
            self.engine.note_update(statement.table, row_id, old, new)
            self.stats.record_write(statement.table)
        self.stats.updates += 1
        return len(row_ids)

    def _execute_delete(self, statement: Delete, params: dict) -> int:
        store = self.table(statement.table)
        row_ids = self._match_rows(store, statement.where, params)
        for row_id in row_ids:
            if row_id in store.rows:  # cascades may have removed it already
                self._delete_with_actions(statement.table, row_id)
        self.stats.deletes += 1
        return len(row_ids)

    def delete_where(self, table: str, where_sql_row_filter=None) -> int:
        """Programmatic delete helper used by tests/seeders."""
        with self._write_scope():
            store = self.table(table)
            row_ids = [
                rid for rid, row in list(store.rows.items())
                if where_sql_row_filter is None or where_sql_row_filter(row)
            ]
            for row_id in row_ids:
                if row_id in store.rows:
                    self._delete_with_actions(table, row_id)
            return len(row_ids)

    def _delete_with_actions(self, table: str, row_id: int) -> None:
        store = self.table(table)
        row = store.rows[row_id]
        for other_name, other in list(self.tables.items()):
            for fkey in other.schema.foreign_keys:
                if fkey.target_table != table:
                    continue
                key = tuple(row[c] for c in fkey.target_columns)
                if any(v is None for v in key):
                    continue
                referencing = other.find_by_key(fkey.columns, key)
                if not referencing:
                    continue
                if fkey.on_delete == "restrict":
                    raise IntegrityError(
                        f"cannot delete from {table!r}: row referenced by "
                        f"{other_name}({', '.join(fkey.columns)})"
                    )
                if fkey.on_delete == "cascade":
                    for ref_id in referencing:
                        if ref_id in other.rows:
                            self._delete_with_actions(other_name, ref_id)
                else:  # set_null
                    for ref_id in referencing:
                        if ref_id in other.rows:
                            previous = dict(other.rows[ref_id])
                            nulled = other.update_row(
                                ref_id, {c: None for c in fkey.columns}
                            )
                            self.engine.note_update(other_name, ref_id,
                                                    previous, nulled)
                            self.stats.record_write(other_name)
        self.engine.note_delete(table, row_id, dict(row))
        store.delete_row(row_id)
        self.stats.record_write(table)

    # -- foreign keys ---------------------------------------------------------------

    def _check_foreign_keys_outgoing(self, store: TableStore, row: dict) -> None:
        for fkey in store.schema.foreign_keys:
            key = tuple(row[c] for c in fkey.columns)
            if any(v is None for v in key):
                continue  # NULL FK components opt out (SQL MATCH SIMPLE)
            target = self.table(fkey.target_table)
            if not target.find_by_key(fkey.target_columns, key):
                raise IntegrityError(
                    f"foreign key violation: {store.schema.name}"
                    f"({', '.join(fkey.columns)})={key!r} has no match in "
                    f"{fkey.target_table}({', '.join(fkey.target_columns)})"
                )

    def _check_referencing_after_update(
        self, store: TableStore, old: dict, new: dict
    ) -> None:
        """Reject updates that orphan rows referencing the old key values."""
        table = store.schema.name
        for other_name, other in self.tables.items():
            for fkey in other.schema.foreign_keys:
                if fkey.target_table != table:
                    continue
                old_key = tuple(old[c] for c in fkey.target_columns)
                new_key = tuple(new[c] for c in fkey.target_columns)
                if old_key == new_key or any(v is None for v in old_key):
                    continue
                # The old key may still be provided by another row.
                if store.find_by_key(fkey.target_columns, old_key):
                    continue
                if other.find_by_key(fkey.columns, old_key):
                    raise IntegrityError(
                        f"cannot update {table!r}: old key {old_key!r} still "
                        f"referenced by {other_name!r}"
                    )

    # -- convenience -------------------------------------------------------------------

    def row_count(self, table: str) -> int:
        return len(self.table(table))

    def table_names(self) -> list[str]:
        return sorted(self.tables)
