"""WAL-shipping replication: one write primary, per-process read replicas.

The paper's answer to scale is architectural, not incremental: hard
boundaries between tiers, so each tier can be multiplied.  E13 found the
last single-process wall — compiled/columnar execution made the workload
CPU-bound, and the GIL serialized it — and the commit stream built in
the durability PR was designed as the attachment point for exactly this
module.  Here the binary WAL becomes a wire protocol: a
:class:`ReplicationServer` on the primary ships committed records to any
number of :class:`ReplicationClient` peers, each of which replays them
into its own :class:`ReplicaEngine` and publishes the resulting commit
events into its own process's invalidation bus, so every worker's
bean/fragment/page caches stay correct without sharing memory.

Protocol (length-prefixed messages over one local TCP connection)::

    [u8 type][u32 length][payload]

    HELLO     replica → primary   {u64 last_applied_lsn}[utf-8 name]
    SNAPSHOT  primary → replica   a snapshot blob (repro.rdb.snapshot)
    RECORD    primary → replica   one on-disk WAL frame, verbatim
                                  ([u32 len][u32 crc32][payload])
    ACK       replica → primary   {u64 applied_lsn}

Design points, each load-bearing:

- **Bootstrap vs catch-up.**  On HELLO the primary decides, under the
  database read lock, whether the replica's ``last_applied_lsn`` can be
  caught up from the current WAL file alone (every record after it is
  still on disk).  If not — a fresh replica, or a checkpoint truncated
  the log past the replica's position — it serializes a full snapshot
  at the current LSN and ships that first.  Either way the tail stream
  then starts from the *beginning* of the current WAL file: shipping is
  allowed to be duplicative because application is idempotent.
- **Idempotent, gap-intolerant replay.**  A replica skips records with
  ``lsn <= last_applied`` (duplicate delivery after reconnect is
  normal) and refuses records that would leave a gap (the stream lost
  its prefix; the client resyncs with a fresh bootstrap).  A replica
  replaying any WAL prefix is therefore byte-identical to a fresh crash
  recovery of that prefix — the oracle E21 checks.
- **Torn tails are a parser problem, not a protocol problem.**  The
  shipper reads the WAL file while the writer appends to it, so a poll
  may observe a half-written frame; :class:`WalTail` simply stops
  before it and resumes when the bytes complete.  The same incremental
  parser guards the replica's socket buffer.
- **Commit LSNs are the consistency currency.**  ``Database.last_lsn``
  on the primary is a *write token*; ``Database.wait_for_lsn`` on a
  replica blocks a read until replay has caught up to the token —
  read-your-writes without any cross-process locking.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import time
import zlib

from repro.errors import DatabaseError, ReplicationError
from repro.rdb.engine import CommitEvent, StorageEngine
from repro.rdb.snapshot import load_snapshot_bytes, snapshot_bytes
from repro.rdb.wal import MAGIC, CommitRecord, _FRAME

MSG_HELLO = 1
MSG_SNAPSHOT = 2
MSG_RECORD = 3
MSG_ACK = 4

_HEAD = struct.Struct(">BI")  # message type, payload length
_U64 = struct.Struct(">Q")

#: refuse absurd frames early (a corrupt length would otherwise make a
#: peer try to buffer gigabytes before noticing)
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


def encode_message(msg_type: int, payload: bytes) -> bytes:
    return _HEAD.pack(msg_type, len(payload)) + payload


class MessageBuffer:
    """Incremental parser for the length-prefixed message stream.

    ``feed`` bytes as they arrive; ``messages`` yields every complete
    ``(type, payload)`` and leaves any trailing partial message
    buffered — the socket-side twin of :class:`WalTail`.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def messages(self):
        while len(self._buffer) >= _HEAD.size:
            msg_type, length = _HEAD.unpack_from(self._buffer, 0)
            if length > MAX_MESSAGE_BYTES:
                raise ReplicationError(
                    f"replication message of {length} bytes exceeds limit"
                )
            end = _HEAD.size + length
            if len(self._buffer) < end:
                return  # partial message: wait for more bytes
            payload = bytes(self._buffer[_HEAD.size:end])
            del self._buffer[:end]
            yield msg_type, payload


def decode_wal_frame(frame: bytes) -> CommitRecord:
    """Decode one shipped WAL frame, CRC included.

    The frame travels verbatim from the primary's disk, so the CRC
    check here catches both disk corruption the primary missed and any
    framing bug in the shipper.
    """
    if len(frame) < _FRAME.size:
        raise ReplicationError("short WAL frame on the replication stream")
    length, crc = _FRAME.unpack_from(frame, 0)
    payload = frame[_FRAME.size:]
    if len(payload) != length:
        raise ReplicationError(
            f"WAL frame length mismatch: header says {length}, "
            f"got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise ReplicationError("CRC mismatch on shipped WAL frame")
    return CommitRecord.decode(payload)


# -- the primary side -------------------------------------------------------


class WalTail:
    """Incremental reader of complete frames from a live WAL file.

    The writer appends under the database write lock; this reader polls
    from another thread, so it may observe a frame mid-write (a torn
    tail).  ``poll`` returns only complete, CRC-valid frames and leaves
    the offset at the first incomplete one.  A file that *shrank* means
    a checkpoint truncated the log — the caller must re-bootstrap its
    peer, because the truncated records are only available via snapshot.
    """

    def __init__(self, path: str):
        self.path = path
        self.offset = len(MAGIC)
        self.frames_read = 0
        self.torn_reads = 0
        self.truncations = 0

    def poll(self) -> tuple[list[bytes], bool]:
        """Read newly completed frames; returns ``(frames, truncated)``.

        ``truncated`` is True when the file shrank below the current
        offset (checkpoint): the offset resets to the header and the
        caller must re-bootstrap before shipping the returned frames.
        """
        truncated = False
        try:
            with open(self.path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < self.offset:
                    truncated = True
                    self.truncations += 1
                    self.offset = len(MAGIC)
                handle.seek(self.offset)
                data = handle.read()
        except FileNotFoundError:
            return [], False
        frames: list[bytes] = []
        position = 0
        total = len(data)
        while position + _FRAME.size <= total:
            length, crc = _FRAME.unpack_from(data, position)
            end = position + _FRAME.size + length
            if end > total:
                self.torn_reads += 1  # half-written frame: retry later
                break
            payload = data[position + _FRAME.size:end]
            if zlib.crc32(payload) != crc:
                # A corrupt frame never completes; stop here the way
                # recovery does and let the next poll retry (the writer
                # may still be mid-write across our two reads).
                self.torn_reads += 1
                break
            frames.append(data[position:end])
            position = end
        self.offset += position
        self.frames_read += len(frames)
        return frames, truncated


class _PeerConnection:
    """Primary-side state for one connected replica."""

    def __init__(self, sock: socket.socket, name: str, hello_lsn: int):
        self.sock = sock
        self.name = name
        self.hello_lsn = hello_lsn
        self.acked_lsn = 0
        self.sent_lsn = 0
        self.snapshots_sent = 0
        self.frames_sent = 0
        self.connected_at = time.monotonic()
        self.wake = threading.Event()
        self.ack_buffer = MessageBuffer()


class ReplicationServer:
    """Ships the primary's WAL to connected replicas.

    Requires a durable database (``Database.open``): the WAL file *is*
    the replication stream.  One acceptor thread plus one shipper
    thread per replica; commit events only ``set`` a per-connection
    wake flag, so the publish path stays O(replicas) with no I/O.
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 poll_interval: float = 0.05):
        wal_path = getattr(database.engine, "wal_path", None)
        if wal_path is None:
            raise ReplicationError(
                "replication requires a durable primary (Database.open): "
                "the WAL file is the shipping source"
            )
        self.database = database
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.connections_accepted = 0
        self.snapshots_shipped = 0
        self.frames_shipped = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._peers: list[_PeerConnection] = []
        self._lock = threading.Lock()
        self._stopping = False
        self._subscribed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> tuple:
        """Bind, subscribe to the commit stream, and accept replicas.

        Returns the bound ``(host, port)``.
        """
        if self._listener is not None:
            raise ReplicationError("replication server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self._stopping = False
        if not self._subscribed:
            self.database.commit_stream.subscribe(self._on_commit)
            self._subscribed = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="replication-accept", daemon=True,
        )
        self._accept_thread.start()
        return listener.getsockname()

    @property
    def address(self) -> tuple | None:
        return self._listener.getsockname() if self._listener else None

    def stop(self) -> None:
        """Close the listener and every peer connection.

        The commit-stream subscription stays (restarting the server on
        the same database keeps working); it costs one no-op callback
        per commit while stopped.
        """
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            peers = list(self._peers)
        for peer in peers:
            try:
                peer.sock.close()
            except OSError:
                pass
            peer.wake.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def _on_commit(self, event: CommitEvent) -> None:
        with self._lock:
            peers = list(self._peers)
        for peer in peers:
            peer.wake.set()

    # -- accepting ----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping and listener is not None:
            try:
                sock, _addr = listener.accept()
            except OSError:  # listener closed by stop()
                return
            threading.Thread(
                target=self._serve_peer, args=(sock,),
                name="replication-ship", daemon=True,
            ).start()

    def _read_hello(self, sock: socket.socket) -> tuple[int, str]:
        buffer = MessageBuffer()
        sock.settimeout(10.0)
        while True:
            data = sock.recv(65536)
            if not data:
                raise ReplicationError("peer hung up before HELLO")
            buffer.feed(data)
            for msg_type, payload in buffer.messages():
                if msg_type != MSG_HELLO or len(payload) < _U64.size:
                    raise ReplicationError("expected HELLO as first message")
                (lsn,) = _U64.unpack_from(payload, 0)
                name = payload[_U64.size:].decode("utf-8", "replace")
                return lsn, name

    def _serve_peer(self, sock: socket.socket) -> None:
        try:
            hello_lsn, name = self._read_hello(sock)
        except (OSError, ReplicationError, DatabaseError):
            sock.close()
            return
        peer = _PeerConnection(sock, name or f"replica-{id(sock):x}",
                               hello_lsn)
        with self._lock:
            self._peers.append(peer)
            self.connections_accepted += 1
        try:
            self._ship_loop(peer)
        except (OSError, ReplicationError):
            pass  # peer vanished; it will reconnect and catch up
        finally:
            with self._lock:
                if peer in self._peers:
                    self._peers.remove(peer)
            try:
                sock.close()
            except OSError:
                pass

    # -- shipping -----------------------------------------------------------

    def _first_wal_lsn(self) -> int | None:
        """The LSN of the first complete record in the WAL file."""
        tail = WalTail(self.database.engine.wal_path)
        frames, _truncated = tail.poll()
        if not frames:
            return None
        return decode_wal_frame(frames[0]).lsn

    def _send_bootstrap_if_needed(self, peer: _PeerConnection) -> None:
        """Under the database read lock: decide catch-up vs snapshot.

        Catch-up is possible iff every record after the peer's LSN is
        still in the WAL file.  The read lock pins the decision: no
        commit or checkpoint can move the goalposts while we look.
        """
        with self.database._rwlock.read_locked():
            engine = self.database.engine
            first = self._first_wal_lsn()
            if peer.hello_lsn > 0 and (
                first <= peer.hello_lsn + 1 if first is not None
                else engine.last_lsn <= peer.hello_lsn
            ):
                peer.sent_lsn = peer.hello_lsn
                return  # the file alone can catch this replica up
            blob = snapshot_bytes(engine.last_lsn, engine.tables)
            snapshot_lsn = engine.last_lsn
        peer.sock.sendall(encode_message(MSG_SNAPSHOT, blob))
        peer.snapshots_sent += 1
        peer.sent_lsn = snapshot_lsn
        with self._lock:
            self.snapshots_shipped += 1

    def _ship_loop(self, peer: _PeerConnection) -> None:
        self._send_bootstrap_if_needed(peer)
        tail = WalTail(self.database.engine.wal_path)
        peer.sock.settimeout(10.0)
        while not self._stopping:
            frames, truncated = tail.poll()
            if truncated:
                # A checkpoint truncated the log mid-stream: the frames
                # we just read start *after* the snapshot point, so ship
                # a fresh snapshot first to close the gap.
                peer.hello_lsn = 0
                self._send_bootstrap_if_needed(peer)
            for frame in frames:
                peer.sock.sendall(encode_message(MSG_RECORD, frame))
                peer.frames_sent += 1
                peer.sent_lsn = max(
                    peer.sent_lsn, decode_wal_frame(frame).lsn
                )
            if frames:
                with self._lock:
                    self.frames_shipped += len(frames)
            self._drain_acks(peer)
            if peer.wake.wait(timeout=self.poll_interval):
                peer.wake.clear()

    def _drain_acks(self, peer: _PeerConnection) -> None:
        peer.sock.setblocking(False)
        try:
            while True:
                try:
                    data = peer.sock.recv(65536)
                except (BlockingIOError, socket.timeout):
                    return
                if not data:
                    raise OSError("peer closed")
                peer.ack_buffer.feed(data)
                for msg_type, payload in peer.ack_buffer.messages():
                    if msg_type == MSG_ACK and len(payload) >= _U64.size:
                        (lsn,) = _U64.unpack_from(payload, 0)
                        peer.acked_lsn = max(peer.acked_lsn, lsn)
        finally:
            peer.sock.settimeout(10.0)

    # -- observation --------------------------------------------------------

    def stats(self) -> dict:
        """Primary-side replication health for ``/_status``.

        ``lag`` is in commits (LSNs), not seconds: the primary's last
        LSN minus the last LSN each replica acknowledged applying.
        """
        last_lsn = self.database.engine.last_lsn
        with self._lock:
            peers = list(self._peers)
        workers = [
            {
                "name": peer.name,
                "acked_lsn": peer.acked_lsn,
                "sent_lsn": peer.sent_lsn,
                "lag": max(0, last_lsn - peer.acked_lsn),
                "snapshots_sent": peer.snapshots_sent,
                "frames_sent": peer.frames_sent,
                "connected_seconds": round(
                    time.monotonic() - peer.connected_at, 3
                ),
            }
            for peer in peers
        ]
        return {
            "role": "primary",
            "last_lsn": last_lsn,
            "replicas_connected": len(workers),
            "connections_accepted": self.connections_accepted,
            "snapshots_shipped": self.snapshots_shipped,
            "frames_shipped": self.frames_shipped,
            "max_lag": max((w["lag"] for w in workers), default=0),
            "workers": workers,
        }


# -- the replica side -------------------------------------------------------


class ReplicaEngine(StorageEngine):
    """A read-only storage engine fed exclusively by replicated records.

    Local writes raise :class:`ReplicationError` — the fleet funnels
    every write to the primary, and a replica that silently accepted
    one would fork history.  State changes arrive only through
    :meth:`apply_commit_record` (idempotent, gap-intolerant) and
    :meth:`install_tables` (snapshot bootstrap).
    """

    mode = "replica"

    def __init__(self) -> None:
        super().__init__()
        self.records_applied = 0
        self.duplicates_skipped = 0
        self.bootstraps = 0

    def _refuse_write(self):
        raise ReplicationError(
            "replica database is read-only: route writes to the primary"
        )

    def note_insert(self, table, row_id, row):
        self._refuse_write()

    def note_update(self, table, row_id, old, new):
        self._refuse_write()

    def note_delete(self, table, row_id, old):
        self._refuse_write()

    def note_create_table(self, schema):
        self._refuse_write()

    def note_create_index(self, table, index):
        self._refuse_write()

    def note_drop_table(self, table):
        self._refuse_write()

    def note_analyze(self, table):
        self._refuse_write()

    def begin(self):
        self._refuse_write()

    # -- replication apply ---------------------------------------------------

    def apply_commit_record(self, record: CommitRecord) -> CommitEvent | None:
        """Replay one shipped record; returns its event, or ``None`` for
        a duplicate.  Caller holds the database write lock."""
        if record.lsn <= self.last_lsn:
            self.duplicates_skipped += 1
            return None
        if record.lsn != self._next_lsn:
            raise ReplicationError(
                f"replication gap: expected lsn {self._next_lsn}, "
                f"got {record.lsn} — resync required"
            )
        self.replay_record(record)
        self._next_lsn = record.lsn + 1
        self.records_applied += 1
        self.commits += 1
        return CommitEvent(
            lsn=record.lsn,
            tables=frozenset(record.tables()),
            ops=tuple(record.ops),
            durable=False,
        )

    def install_tables(self, lsn: int, tables: dict) -> CommitEvent:
        """Replace the whole state with a bootstrap snapshot.

        Returns the bootstrap event (every table named, no ops) the
        caller publishes so caches flush.  Caller holds the write lock.
        """
        names = frozenset(tables) | frozenset(self.tables)
        self.tables = tables
        self._next_lsn = lsn + 1
        self.bootstraps += 1
        return CommitEvent(
            lsn=lsn, tables=names, ops=(), durable=False, bootstrap=True,
        )

    def observability_stats(self) -> dict:
        stats = super().observability_stats()
        stats.update({
            "records_applied": self.records_applied,
            "duplicates_skipped": self.duplicates_skipped,
            "bootstraps": self.bootstraps,
        })
        return stats


class ReplicationClient:
    """Tails the primary's stream into a replica database.

    Owns one background thread: connect, HELLO with the last applied
    LSN, then apply SNAPSHOT/RECORD messages as they arrive, ACKing
    after each batch.  Connection loss triggers reconnection with
    backoff; a replication gap (checkpoint outran us while
    disconnected) triggers a full resync — HELLO with LSN 0, which
    forces a snapshot bootstrap.
    """

    def __init__(self, database, address: tuple, name: str = "replica",
                 reconnect_backoff: float = 0.2):
        if not isinstance(database.engine, ReplicaEngine):
            raise ReplicationError(
                "ReplicationClient needs a Database over a ReplicaEngine"
            )
        self.database = database
        self.address = tuple(address)
        self.name = name
        self.reconnect_backoff = reconnect_backoff
        self.connected = False
        self.reconnects = 0
        self.bytes_received = 0
        self.last_error: str | None = None
        self._force_resync = False
        self._stopping = False
        self._thread: threading.Thread | None = None
        self._sock: socket.socket | None = None
        self._bootstrapped = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ReplicationClient":
        if self._thread is not None:
            raise ReplicationError("replication client already started")
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name=f"replication-client-{self.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def wait_for_bootstrap(self, timeout: float = 10.0) -> bool:
        """Block until the first snapshot (or catch-up stream) landed —
        the point after which the replica serves a consistent state."""
        return self._bootstrapped.wait(timeout)

    def wait_for_lsn(self, lsn: int, timeout: float = 5.0) -> bool:
        """Read-your-writes: block until replay reaches ``lsn``."""
        return self.database.wait_for_lsn(lsn, timeout)

    # -- the tailing thread --------------------------------------------------

    def _run(self) -> None:
        while not self._stopping:
            try:
                self._connect_and_stream()
            except (OSError, ReplicationError, DatabaseError) as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                if isinstance(exc, ReplicationError) and "gap" in str(exc):
                    # The stream lost our prefix (checkpoint while we
                    # were away): next HELLO claims LSN 0 to force a
                    # snapshot bootstrap.
                    self._force_resync = True
            self.connected = False
            if self._stopping:
                return
            self.reconnects += 1
            time.sleep(self.reconnect_backoff)

    def _connect_and_stream(self) -> None:
        hello_lsn = 0 if self._force_resync else self.database.last_lsn
        sock = socket.create_connection(self.address, timeout=10.0)
        self._sock = sock
        try:
            sock.sendall(encode_message(
                MSG_HELLO,
                _U64.pack(hello_lsn) + self.name.encode("utf-8"),
            ))
            self.connected = True
            self._force_resync = False
            if hello_lsn > 0:
                # Catch-up reconnect: the state we already hold is the
                # consistent base; don't gate readers on a snapshot
                # that may never come.
                self._bootstrapped.set()
            buffer = MessageBuffer()
            sock.settimeout(0.5)
            while not self._stopping:
                try:
                    data = sock.recv(1 << 20)
                except socket.timeout:
                    continue
                if not data:
                    raise OSError("primary closed the connection")
                self.bytes_received += len(data)
                buffer.feed(data)
                applied_any = False
                for msg_type, payload in buffer.messages():
                    if msg_type == MSG_SNAPSHOT:
                        lsn, tables = load_snapshot_bytes(
                            payload, origin=f"bootstrap from {self.address}"
                        )
                        self.database.install_replica_state(lsn, tables)
                        self._bootstrapped.set()
                        applied_any = True
                    elif msg_type == MSG_RECORD:
                        record = decode_wal_frame(payload)
                        event = self.database.apply_replicated(record)
                        applied_any = applied_any or event is not None
                    # unknown types are skipped: forward compatibility
                if applied_any:
                    sock.sendall(encode_message(
                        MSG_ACK, _U64.pack(self.database.last_lsn)
                    ))
        finally:
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    # -- observation --------------------------------------------------------

    def stats(self) -> dict:
        """Replica-side replication health for ``/_status``."""
        engine = self.database.engine
        return {
            "role": "replica",
            "name": self.name,
            "connected": self.connected,
            "applied_lsn": engine.last_lsn,
            "records_applied": engine.records_applied,
            "duplicates_skipped": engine.duplicates_skipped,
            "bootstraps": engine.bootstraps,
            "reconnects": self.reconnects,
            "bytes_received": self.bytes_received,
            "last_error": self.last_error,
        }


def open_replica(name: str = "replica"):
    """A :class:`~repro.rdb.database.Database` over a fresh
    :class:`ReplicaEngine` — the unit a fleet worker owns."""
    from repro.rdb.database import Database

    return Database(name=name, engine=ReplicaEngine())
