"""SQL expression AST and evaluation.

Expressions evaluate against a *scope* (anything with a
``lookup(table, column)`` method) plus a parameter mapping.  SQL's
three-valued logic is honoured: ``None`` is NULL/UNKNOWN, comparisons
with NULL yield UNKNOWN, and WHERE keeps a row only when its predicate
is strictly True.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError


class Expr:
    """Base expression node."""

    def evaluate(self, scope, params):
        raise NotImplementedError

    def column_refs(self) -> list["ColumnRef"]:
        """All column references in this subtree (for planning)."""
        return []


@dataclass(frozen=True)
class Literal(Expr):
    value: object

    def evaluate(self, scope, params):
        return self.value


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference."""

    table: str | None
    column: str

    def evaluate(self, scope, params):
        return scope.lookup(self.table, self.column)

    def column_refs(self) -> list["ColumnRef"]:
        return [self]

    @property
    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Param(Expr):
    """A named ``:name`` or positional ``?`` parameter placeholder."""

    name: str  # positional placeholders are named "1", "2", ...

    def evaluate(self, scope, params):
        if self.name not in params:
            raise QueryError(f"missing query parameter {self.name!r}")
        return params[self.name]


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str  # + - * / %
    left: Expr
    right: Expr

    def evaluate(self, scope, params):
        lhs = self.left.evaluate(scope, params)
        rhs = self.right.evaluate(scope, params)
        if lhs is None or rhs is None:
            return None
        if self.op == "+" and isinstance(lhs, str) and isinstance(rhs, str):
            return lhs + rhs
        if not (_is_number(lhs) and _is_number(rhs)):
            raise QueryError(
                f"arithmetic {self.op!r} needs numbers, got {lhs!r} and {rhs!r}"
            )
        if self.op == "+":
            return lhs + rhs
        if self.op == "-":
            return lhs - rhs
        if self.op == "*":
            return lhs * rhs
        if self.op == "/":
            if rhs == 0:
                raise QueryError("division by zero")
            result = lhs / rhs
            # Integer division stays integral when exact, matching the
            # engine's INTEGER/FLOAT split.
            if isinstance(lhs, int) and isinstance(rhs, int) and result == int(result):
                return int(result)
            return result
        if self.op == "%":
            if rhs == 0:
                raise QueryError("modulo by zero")
            return lhs % rhs
        raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def column_refs(self):
        return self.left.column_refs() + self.right.column_refs()


@dataclass(frozen=True)
class Concat(Expr):
    """SQL ``||`` string concatenation."""

    left: Expr
    right: Expr

    def evaluate(self, scope, params):
        lhs = self.left.evaluate(scope, params)
        rhs = self.right.evaluate(scope, params)
        if lhs is None or rhs is None:
            return None
        return _as_text(lhs) + _as_text(rhs)

    def column_refs(self):
        return self.left.column_refs() + self.right.column_refs()


def _as_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return value if isinstance(value, str) else str(value)


def compare_values(lhs, rhs) -> int | None:
    """SQL comparison: None means UNKNOWN (a NULL operand).

    Mixed numeric types compare numerically; otherwise operands must be
    mutually comparable Python values.
    """
    if lhs is None or rhs is None:
        return None
    if isinstance(lhs, bool) or isinstance(rhs, bool):
        if isinstance(lhs, bool) and isinstance(rhs, bool):
            return (lhs > rhs) - (lhs < rhs)
        raise QueryError(f"cannot compare {lhs!r} with {rhs!r}")
    if _is_number(lhs) and _is_number(rhs):
        return (lhs > rhs) - (lhs < rhs)
    if type(lhs) is not type(rhs):
        raise QueryError(f"cannot compare {lhs!r} with {rhs!r}")
    return (lhs > rhs) - (lhs < rhs)


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # = <> < <= > >=
    left: Expr
    right: Expr

    def evaluate(self, scope, params):
        sign = compare_values(
            self.left.evaluate(scope, params), self.right.evaluate(scope, params)
        )
        if sign is None:
            return None
        if self.op == "=":
            return sign == 0
        if self.op == "<>":
            return sign != 0
        if self.op == "<":
            return sign < 0
        if self.op == "<=":
            return sign <= 0
        if self.op == ">":
            return sign > 0
        if self.op == ">=":
            return sign >= 0
        raise QueryError(f"unknown comparison operator {self.op!r}")

    def column_refs(self):
        return self.left.column_refs() + self.right.column_refs()


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def evaluate(self, scope, params):
        lhs = self.left.evaluate(scope, params)
        if lhs is False:
            return False
        rhs = self.right.evaluate(scope, params)
        if rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True

    def column_refs(self):
        return self.left.column_refs() + self.right.column_refs()


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def evaluate(self, scope, params):
        lhs = self.left.evaluate(scope, params)
        if lhs is True:
            return True
        rhs = self.right.evaluate(scope, params)
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False

    def column_refs(self):
        return self.left.column_refs() + self.right.column_refs()


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        if value is None:
            return None
        return not value

    def column_refs(self):
        return self.operand.column_refs()


@dataclass(frozen=True)
class Negate(Expr):
    operand: Expr

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        if value is None:
            return None
        if not _is_number(value):
            raise QueryError(f"cannot negate {value!r}")
        return -value

    def column_refs(self):
        return self.operand.column_refs()


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        result = value is None
        return not result if self.negated else result

    def column_refs(self):
        return self.operand.column_refs()


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    options: tuple[Expr, ...]
    negated: bool = False

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        if value is None:
            return None
        saw_null = False
        for option in self.options:
            candidate = option.evaluate(scope, params)
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def column_refs(self):
        refs = self.operand.column_refs()
        for option in self.options:
            refs += option.column_refs()
        return refs


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-sensitive)."""

    operand: Expr
    pattern: Expr
    negated: bool = False

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        pattern = self.pattern.evaluate(scope, params)
        if value is None or pattern is None:
            return None
        regex = _like_to_regex(str(pattern))
        matched = regex.match(str(value)) is not None
        return not matched if self.negated else matched

    def column_refs(self):
        return self.operand.column_refs() + self.pattern.column_refs()


def _like_to_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def evaluate(self, scope, params):
        value = self.operand.evaluate(scope, params)
        low_sign = compare_values(value, self.low.evaluate(scope, params))
        high_sign = compare_values(value, self.high.evaluate(scope, params))
        if low_sign is None or high_sign is None:
            return None
        inside = low_sign >= 0 and high_sign <= 0
        return not inside if self.negated else inside

    def column_refs(self):
        return (
            self.operand.column_refs()
            + self.low.column_refs()
            + self.high.column_refs()
        )


_SCALAR_FUNCTIONS = {}


def _scalar(name):
    def register(func):
        _SCALAR_FUNCTIONS[name] = func
        return func
    return register


@_scalar("UPPER")
def _fn_upper(args):
    (value,) = args
    return None if value is None else str(value).upper()


@_scalar("LOWER")
def _fn_lower(args):
    (value,) = args
    return None if value is None else str(value).lower()


@_scalar("LENGTH")
def _fn_length(args):
    (value,) = args
    return None if value is None else len(str(value))


@_scalar("ABS")
def _fn_abs(args):
    (value,) = args
    if value is None:
        return None
    if not _is_number(value):
        raise QueryError(f"ABS needs a number, got {value!r}")
    return abs(value)


@_scalar("ROUND")
def _fn_round(args):
    if len(args) not in (1, 2):
        raise QueryError("ROUND takes one or two arguments")
    value = args[0]
    if value is None:
        return None
    digits = args[1] if len(args) == 2 else 0
    return round(value, int(digits))


@_scalar("COALESCE")
def _fn_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


@_scalar("CONCAT")
def _fn_concat(args):
    return "".join(_as_text(a) for a in args if a is not None)


@_scalar("SUBSTR")
def _fn_substr(args):
    if len(args) not in (2, 3):
        raise QueryError("SUBSTR takes two or three arguments")
    value = args[0]
    if value is None:
        return None
    text = str(value)
    start = int(args[1]) - 1  # SQL is 1-based
    if start < 0:
        start = 0
    if len(args) == 3:
        return text[start : start + int(args[2])]
    return text[start:]


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]

    def evaluate(self, scope, params):
        func = _SCALAR_FUNCTIONS.get(self.name.upper())
        if func is None:
            raise QueryError(f"unknown function {self.name!r}")
        values = [arg.evaluate(scope, params) for arg in self.args]
        if self.name.upper() not in ("COALESCE", "CONCAT", "ROUND", "SUBSTR"):
            if len(values) != 1:
                raise QueryError(f"{self.name} takes exactly one argument")
        return func(values)

    def column_refs(self):
        refs: list[ColumnRef] = []
        for arg in self.args:
            refs += arg.column_refs()
        return refs


AGGREGATE_NAMES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class AggregateCall(Expr):
    """``COUNT(*)``, ``SUM(expr)``... — only valid in SELECT/HAVING.

    Evaluation happens in the executor's grouping operator; evaluating an
    aggregate as a plain scalar is an error the planner reports earlier,
    but guard here too.
    """

    func: str
    argument: Expr | None  # None means COUNT(*)
    distinct: bool = False

    def evaluate(self, scope, params):
        raise QueryError(
            f"aggregate {self.func} used outside SELECT/HAVING of a grouped query"
        )

    def column_refs(self):
        return [] if self.argument is None else self.argument.column_refs()
