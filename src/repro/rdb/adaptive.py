"""Adaptive query execution: the planner learns from running plans.

The cost model (:mod:`repro.rdb.cost`) trusts ANALYZE statistics that go
stale the moment operations write, and its uniformity assumption cannot
see skew at all — ``region = :r`` is priced ``1/distinct`` whether the
parameter names a two-row region or one holding 90% of the table.  This
module closes the loop from execution back into planning:

- **Feedback collection.**  Every execution of a cached plan records
  estimated-vs-actual cardinality into a per-plan
  :class:`CardinalityFeedback` ledger (keyed by plan-cache entry).  The
  actual counts are the operator row counts the executor already
  maintains for spans — no second counting pass.  Plans with a LIMIT
  are skipped: their abandoned generators under-count.

- **Drift detection.**  Each execution's q-error —
  ``max(actual/est, est/actual)``, taken over the root *and* every join
  input — enters a sliding window.  When the window's median exceeds
  the threshold, the plan-cache entry is dropped, the plan's tables are
  queued for a targeted re-ANALYZE, and the statement re-plans (and
  recompiles) on its next execution.  A post-replan cooldown plus a
  per-statement replan cap keep oscillating workloads from replanning
  every call.

- **Correction factors.**  Observed selectivities land in a
  :class:`SelectivityMemory` that the cost model consults *before*
  falling back to statistics, so the replanned statement is priced with
  what execution measured, not what ANALYZE guessed.

Everything here is advisory: corrections and replans change plan
*shape*, never answers — every scan still re-checks its predicate.
Ledgers and the memory are deliberately lock-free (GIL-atomic dict and
deque operations); a lost counter update under contention is tolerated,
the same trade every observability counter in the repo makes.
"""

from __future__ import annotations

from collections import deque

from repro.rdb import cost
from repro.rdb.executor import HashJoinOp, ScanOp
from repro.rdb.expr import And, Between, ColumnRef, Comparison, Expr

#: drift threshold: median window q-error above this marks a plan stale
Q_ERROR_THRESHOLD = 4.0
#: sliding window length (recent executions per plan)
WINDOW_SIZE = 8
#: executions observed before the window may signal drift
MIN_OBSERVATIONS = 4
#: hysteresis: executions after a replan before drift may fire again
REPLAN_COOLDOWN = 12
#: per-statement replan budget — a plan the corrections cannot fix
#: stops thrashing the cache after this many attempts
MAX_REPLANS = 5
#: auto-ANALYZE when live rows drift this factor from the stats snapshot
GROWTH_DRIFT = 2.0
#: exponential-moving-average weight of the newest observation
EWMA_ALPHA = 0.5
#: misestimated plans listed in ``/_status``
TOP_K = 5


def q_error(estimated: float, actual: float) -> float:
    """The symmetric estimation-error factor, floored at one row so an
    empty result against a tiny estimate is not infinitely wrong."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return act / est if act >= est else est / act


def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def conjunct_fingerprint(conjunct: Expr) -> str:
    """A stable identity for one predicate conjunct.  Expr nodes are
    frozen dataclasses, so ``repr`` is structural: the same textual
    predicate re-parsed later (parameters by *name*, never value) maps
    to the same correction entry."""
    return repr(conjunct)


def conjunct_set_key(conjuncts: list[Expr]) -> tuple:
    """Correction key for a whole pushed-down conjunct set.  Set-level
    entries capture *correlation* between conjuncts — the classic case
    the independence assumption cannot price."""
    return ("set", tuple(sorted(conjunct_fingerprint(c) for c in conjuncts)))


def _semantic_keys(conjunct: Expr) -> list[tuple]:
    """Correction keys a single observed conjunct also feeds: the
    per-conjunct entry always, plus the per-column equality/range entry
    the access-path coster consults when pricing index candidates."""
    keys: list[tuple] = [("conj", conjunct_fingerprint(conjunct))]
    if isinstance(conjunct, Comparison):
        left_col = conjunct.left.column if isinstance(conjunct.left, ColumnRef) else None
        right_col = conjunct.right.column if isinstance(conjunct.right, ColumnRef) else None
        column = left_col if right_col is None else (
            right_col if left_col is None else None
        )
        if column is not None:
            if conjunct.op == "=":
                keys.append(("eq", column))
            elif conjunct.op in ("<", "<=", ">", ">="):
                keys.append(("range", column))
    elif isinstance(conjunct, Between) and not conjunct.negated \
            and isinstance(conjunct.operand, ColumnRef):
        keys.append(("range", conjunct.operand.column))
    return keys


def scan_correction_keys(scan: ScanOp) -> list[tuple[str, tuple]]:
    """Every ``(table, key)`` correction entry one scan's observation
    feeds.  Shared by the learner and by tests that force-poison the
    memory to prove replans cannot change answers."""
    conjuncts = _conjuncts(scan.predicate)
    if not conjuncts:
        return []
    table = scan.store.schema.name
    keys: list[tuple[str, tuple]] = [(table, conjunct_set_key(conjuncts))]
    if len(conjuncts) == 1:
        # Single-conjunct scans attribute their selectivity exactly;
        # multi-conjunct observations stay at set granularity (the
        # per-conjunct split is not identifiable from one count).
        keys.extend((table, key) for key in _semantic_keys(conjuncts[0]))
    return keys


class SelectivityMemory:
    """Observed selectivities and join distincts, keyed by
    ``(table, correction key)``.  This is the ``feedback`` object the
    cost functions consult before statistics; entries are EWMA-smoothed
    so one outlier parameter set cannot whipsaw the planner."""

    def __init__(self) -> None:
        self.corrections: dict[tuple, float] = {}
        self.samples: dict[tuple, int] = {}
        self.hits = 0
        self.records = 0

    def observe(self, table: str, key: tuple, value: float) -> None:
        slot = (table,) + key
        previous = self.corrections.get(slot)
        if previous is None:
            self.corrections[slot] = value
        else:
            self.corrections[slot] = (
                EWMA_ALPHA * value + (1.0 - EWMA_ALPHA) * previous
            )
        self.samples[slot] = self.samples.get(slot, 0) + 1
        self.records += 1

    def selectivity(self, table: str, key: tuple) -> float | None:
        """A learned selectivity in (0, 1], or None (fall back to
        statistics).  Consulted from the cost model at plan time."""
        value = self.corrections.get((table,) + key)
        if value is None:
            return None
        self.hits += 1
        return cost.clamp(value)

    def join_distinct(self, table: str, columns: tuple) -> float | None:
        """A learned effective distinct-key count for a hash-join build
        side, or None."""
        value = self.corrections.get((table, "join", columns))
        if value is None:
            return None
        self.hits += 1
        return max(1.0, value)

    def observe_join(self, table: str, columns: tuple, distinct: float) -> None:
        self.observe(table, ("join", columns), distinct)

    def clear(self) -> None:
        self.corrections.clear()
        self.samples.clear()


class CardinalityFeedback:
    """Per-plan estimation ledger: a sliding q-error window plus the
    hysteresis state (cooldown, replan count) that gates replanning.
    Appends are GIL-atomic; concurrent executions may lose an update,
    never corrupt the deque."""

    __slots__ = ("statement", "window", "executions", "replans", "cooldown",
                 "last_estimated", "last_actual", "max_q_error")

    def __init__(self, statement: str) -> None:
        self.statement = statement
        self.window: deque = deque(maxlen=WINDOW_SIZE)
        self.executions = 0
        self.replans = 0
        self.cooldown = 0
        self.last_estimated: float | None = None
        self.last_actual: int | None = None
        self.max_q_error = 1.0

    def record(self, estimated: float, actual: float, worst: float) -> None:
        """One execution: ``estimated``/``actual`` are the root counts
        (reported in ``/_status``); ``worst`` is the max q-error across
        root and join inputs and is what enters the drift window."""
        self.window.append(worst)
        self.executions += 1
        self.last_estimated = estimated
        self.last_actual = int(actual)
        if worst > self.max_q_error:
            self.max_q_error = worst
        if self.cooldown > 0:
            self.cooldown -= 1

    def window_q_error(self) -> float:
        """Median of the window — robust to a single outlier execution."""
        snapshot = sorted(self.window)
        if not snapshot:
            return 1.0
        return snapshot[len(snapshot) // 2]

    def drifted(self, threshold: float) -> bool:
        if len(self.window) < MIN_OBSERVATIONS:
            return False
        return self.window_q_error() > threshold

    def note_replanned(self, cooldown: int) -> None:
        self.replans += 1
        self.cooldown = cooldown
        self.window.clear()


def _walk(root):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def plan_q_error(plan) -> tuple[float, float, float]:
    """(root estimated, root actual, worst q-error) for one executed
    plan, the worst taken over every operator carrying both an estimate
    and an actual count — so a join that exploded in the middle of an
    otherwise-accurate plan still registers."""
    root = plan.root
    root_est = root.est_rows if root.est_rows is not None else 1.0
    root_act = root.actual_rows if root.actual_rows is not None else 0
    worst = 1.0
    for node in _walk(root):
        if node.est_rows is None or node.actual_rows is None:
            continue
        q = q_error(node.est_rows, node.actual_rows)
        if q > worst:
            worst = q
    return float(root_est), float(root_act), worst


class AdaptiveController:
    """The database-side driver of the feedback loop.

    ``observe`` runs after every cached SELECT (outside the read lock):
    it records the execution into the statement's ledger, feeds the
    memory, and — on drift — drops the cache entry and queues the
    plan's tables for re-ANALYZE.  ``preflight`` runs *before* the next
    execution takes the read lock: it performs any queued re-ANALYZE
    (plus growth-triggered ones) under the write lock, so the rebuild
    that follows plans against fresh statistics and corrections.

    Thresholds are instance attributes so tests and benchmarks can
    tighten the loop without monkeypatching module constants.
    """

    def __init__(self, database) -> None:
        self.database = database
        self.enabled = True
        self.q_error_threshold = Q_ERROR_THRESHOLD
        self.min_observations = MIN_OBSERVATIONS
        self.replan_cooldown = REPLAN_COOLDOWN
        self.max_replans = MAX_REPLANS
        self.growth_drift = GROWTH_DRIFT
        self.memory = SelectivityMemory()
        self.ledgers: dict[str, CardinalityFeedback] = {}
        self._pending_reanalyze: set[str] = set()
        #: flipped off on the first refused ANALYZE (read-only replica
        #: engines): corrections keep flowing, re-ANALYZE stops trying
        self._analyze_allowed = True
        self.counters = {
            "observations": 0,
            "drift_detections": 0,
            "replans": 0,
            "reanalyzes": 0,
            "growth_reanalyzes": 0,
            "cooldown_suppressed": 0,
            "replan_budget_exhausted": 0,
        }

    # -- the post-execution half --------------------------------------------

    def observe(self, cache_key: str, plan) -> None:
        """Record one execution of a cached plan; may mark it stale."""
        if not self.enabled or not getattr(plan, "feedback_eligible", False):
            return
        if plan.root.actual_rows is None:
            return
        ledger = self.ledgers.get(cache_key)
        if ledger is None:
            ledger = self.ledgers.setdefault(
                cache_key, CardinalityFeedback(cache_key)
            )
        est, act, worst = plan_q_error(plan)
        self.counters["observations"] += 1
        ledger.record(est, act, worst)
        self._learn(plan)
        if not ledger.drifted(self.q_error_threshold) \
                or len(ledger.window) < self.min_observations:
            return
        if ledger.cooldown > 0:
            self.counters["cooldown_suppressed"] += 1
            return
        if ledger.replans >= self.max_replans:
            self.counters["replan_budget_exhausted"] += 1
            return
        self.counters["drift_detections"] += 1
        ledger.note_replanned(self.replan_cooldown)
        self.counters["replans"] += 1
        self._pending_reanalyze.update(plan.tables)
        self.database._drop_plan(cache_key)

    def _learn(self, plan) -> None:
        """Fold one execution's operator counts into the memory."""
        memory = self.memory
        for node in _walk(plan.root):
            if isinstance(node, ScanOp):
                actual = node.actual_rows
                if actual is None or node.predicate is None:
                    continue
                live = len(node.store.rows)
                if live <= 0:
                    continue
                observed = cost.clamp(actual / live)
                for table, key in scan_correction_keys(node):
                    memory.observe(table, key, observed)
            elif isinstance(node, HashJoinOp) and node.kind == "inner":
                produced = node.actual_rows
                incoming = node.left.actual_rows
                if not produced or not incoming:
                    continue
                build_rows = len(node.store.rows)
                if build_rows <= 0:
                    continue
                # produced ≈ incoming * build / distinct, solved for the
                # *effective* distinct count the estimate should have used
                distinct = max(1.0, incoming * build_rows / produced)
                memory.observe_join(
                    node.store.schema.name, node.build_columns, distinct
                )

    # -- the pre-execution half ---------------------------------------------

    def preflight(self, statement=None) -> None:
        """Run queued (drift) and growth-triggered re-ANALYZE before the
        caller takes the read lock.  ``statement`` (a parsed Select, on
        plan-build paths) contributes its tables to the growth check."""
        if not self.enabled:
            return
        pending = self._take_pending()
        for table in pending:
            self._reanalyze(table, "reanalyzes")
        if statement is None:
            return
        for table in self._statement_tables(statement):
            if table in pending:
                continue
            if self._grown(table):
                self._reanalyze(table, "growth_reanalyzes")

    def _take_pending(self) -> set[str]:
        pending = self._pending_reanalyze
        if not pending:
            return set()
        taken, self._pending_reanalyze = pending, set()
        return taken

    @staticmethod
    def _statement_tables(statement) -> list[str]:
        tables = [statement.source.table]
        tables.extend(join.table.table for join in statement.joins)
        return tables

    def _grown(self, table: str) -> bool:
        store = self.database.tables.get(table)
        if store is None or store.statistics is None:
            return False
        live = len(store.rows)
        base = store.statistics.row_count
        factor = self.growth_drift
        return live > factor * max(base, 1) or base > factor * max(live, 1)

    def _reanalyze(self, table: str, counter: str) -> None:
        if not self._analyze_allowed:
            return
        database = self.database
        if table not in database.tables:
            return
        try:
            database.analyze(table)
        except Exception:
            # Read-only engine (a replica): statistics arrive by WAL
            # replay from the primary; stop trying locally.
            self._analyze_allowed = False
            return
        self.counters[counter] += 1

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """The ``/_status`` planner section: counters, memory health,
        and the top-K misestimated statements by worst-ever q-error."""
        ledgers = sorted(
            self.ledgers.items(),
            key=lambda item: item[1].max_q_error,
            reverse=True,
        )
        top = []
        for key, ledger in ledgers[:TOP_K]:
            if ledger.max_q_error <= 1.5:
                continue
            top.append({
                "statement": key if len(key) <= 80 else key[:77] + "...",
                "q_error_max": round(ledger.max_q_error, 2),
                "q_error_window": round(ledger.window_q_error(), 2),
                "estimated": (
                    None if ledger.last_estimated is None
                    else round(ledger.last_estimated, 1)
                ),
                "actual": ledger.last_actual,
                "executions": ledger.executions,
                "replans": ledger.replans,
            })
        counters = dict(self.counters)
        observations = counters["observations"]
        memory = self.memory
        return {
            "enabled": self.enabled,
            **counters,
            "tracked_plans": len(self.ledgers),
            "feedback_entries": len(memory.corrections),
            "feedback_hits": memory.hits,
            "feedback_hit_rate": (
                round(memory.hits / max(1, memory.hits + observations), 4)
                if (memory.hits or observations) else None
            ),
            "top_misestimates": top,
        }
