"""The static-clone servlet tier — the baseline §4 argues against.

"Cloning the machine where the servlet container resides duplicates also
all the services of the application.  The number of clones must be
decided statically, and cannot be adapted at runtime.  If the traffic of
a certain application reduces, the objects implementing its services
remain in main memory and occupy resources."

A :class:`ServletTierDeployment` therefore holds ``clones × services``
resident instances from deployment until shutdown, whatever the load —
the property experiment E7 plots against the container's adaptive pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ContainerError


@dataclass
class _CloneService:
    name: str
    factory: object
    instances: list = field(default_factory=list)


class ServletTierDeployment:
    """N statically-sized clones of a servlet container."""

    def __init__(self, clone_count: int, instances_per_service: int = 1):
        if clone_count <= 0:
            raise ContainerError("need at least one clone")
        if instances_per_service <= 0:
            raise ContainerError("need at least one instance per service")
        self.clone_count = clone_count
        self.instances_per_service = instances_per_service
        self._services: dict[str, object] = {}
        self._clones: list[dict[str, _CloneService]] = []
        self._round_robin = 0
        self.invocations = 0

    def deploy(self, name: str, factory) -> None:
        """Deploying a service replicates it into EVERY clone, eagerly."""
        if name in self._services:
            raise ContainerError(f"service {name!r} already deployed")
        self._services[name] = factory
        if not self._clones:
            self._clones = [{} for _ in range(self.clone_count)]
        for clone in self._clones:
            service = _CloneService(name, factory)
            for _ in range(self.instances_per_service):
                service.instances.append(factory())
            clone[name] = service

    def invoke(self, name: str, method: str, *args, **kwargs):
        """Round-robin the clones; instances are never released."""
        if name not in self._services:
            raise ContainerError(f"no service deployed as {name!r}")
        clone = self._clones[self._round_robin % self.clone_count]
        self._round_robin += 1
        instance = clone[name].instances[0]
        self.invocations += 1
        return getattr(instance, method)(*args, **kwargs)

    def sweep(self) -> int:
        """Static clones cannot passivate anything — always 0."""
        return 0

    def resident_instances(self, name: str | None = None) -> int:
        if name is not None:
            if name not in self._services:
                raise ContainerError(f"no service deployed as {name!r}")
            return self.clone_count * self.instances_per_service
        return (
            len(self._services) * self.clone_count * self.instances_per_service
        )

    def deployed(self) -> list[str]:
        return sorted(self._services)
