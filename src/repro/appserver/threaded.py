"""A threaded request front end for the application tier.

The paper's runtime exists to serve "a high number of users" (§1): the
servlet container dispatches each incoming request to a worker thread,
and every tier below — pooled connections, shared business components,
the two-level cache — is built to be shared by those threads.  This
module is that dispatch layer for the reproduction: a
:class:`ThreadedAppServer` owns N worker threads which pull
:class:`~repro.mvc.http.HttpRequest` objects off a queue and run them
through the application's full request path concurrently.

Experiment E13 drives it to show that read-heavy traffic scales with
workers (threads overlap the data tier's simulated I/O waits) while
write-heavy traffic stays linearizable on the rdb tier's write lock.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

from repro.errors import ContainerError
from repro.mvc.http import HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry

_STOP = object()


class ThreadedAppServer:
    """Dispatches requests across a pool of worker threads.

    ``app`` is anything with ``handle(request) -> HttpResponse`` (a
    :class:`~repro.app.WebApplication`, with or without a deployed
    business tier).  Use as a context manager, or call :meth:`start` /
    :meth:`stop` explicitly.
    """

    def __init__(self, app, workers: int = 4, queue_capacity: int = 0):
        if workers <= 0:
            raise ContainerError("an app server needs at least one worker")
        self.app = app
        self.workers = workers
        self._queue: queue.Queue = queue.Queue(queue_capacity)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self.requests_served = 0
        self.failures = 0  # requests whose handler raised (bugs, not 4xx/5xx)
        self.served_per_worker: list[int] = []
        self.total_queue_wait_seconds = 0.0
        # Delivery-tier observability: what actually crossed the wire.
        # Counters live in a per-server registry (a restarted server
        # starts from zero without disturbing the application's
        # metrics); the snapshot is exported into the application's
        # registry as an ``appserver`` collector for ``/_status``.
        self.metrics = MetricsRegistry()
        self._bytes_counter = self.metrics.counter("appserver.bytes_on_wire")
        app_obs = getattr(getattr(app, "ctx", None), "obs", None)
        if app_obs is not None:
            app_obs.metrics.register_collector("appserver", self.stats)

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    def start(self) -> "ThreadedAppServer":
        if self._threads:
            raise ContainerError("app server already started")
        self.served_per_worker = [0] * self.workers
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._work, args=(index,),
                name=f"appserver-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, close_app: bool = False) -> None:
        """Drain the workers and join them.

        With ``close_app=True`` the application itself is shut down
        after the last worker exits (``app.close()``), which flushes and
        closes a durable data tier deterministically — every commit the
        workers acknowledged is on disk before ``stop`` returns.  The
        default leaves the application running (seed behaviour: servers
        are routinely restarted against a live application)."""
        if self._threads:
            for _ in self._threads:
                self._queue.put(_STOP)
            for thread in self._threads:
                thread.join()
            self._threads = []
        if close_app:
            close = getattr(self.app, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ThreadedAppServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def submit(self, request: HttpRequest) -> Future:
        """Enqueue one request; the future resolves to its response."""
        if not self._threads:
            raise ContainerError("app server is not running")
        future: Future = Future()
        self._queue.put((request, future, time.monotonic()))
        return future

    def get(self, url: str, session_id: str | None = None,
            headers: dict | None = None) -> Future:
        return self.submit(HttpRequest.from_url(
            url, headers=headers, session_id=session_id
        ))

    def serve(self, requests, timeout: float | None = None) -> list[HttpResponse]:
        """Submit every request and wait for all responses, in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    def _work(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request, future, enqueued_at = item
            waited = time.monotonic() - enqueued_at
            try:
                response = self.app.handle(request)
            except BaseException as exc:  # surface to the submitter
                with self._lock:
                    self.failures += 1
                future.set_exception(exc)
            else:
                with self._lock:
                    self.requests_served += 1
                    self.served_per_worker[index] += 1
                    self.total_queue_wait_seconds += waited
                self.metrics.counter(
                    f"appserver.status.{response.status}"
                ).inc()
                self._bytes_counter.inc(response.wire_length)
                future.set_result(response)

    # -- observation ----------------------------------------------------------

    @property
    def status_counts(self) -> dict[int, int]:
        """Responses delivered, by HTTP status (read from the registry)."""
        prefix = "appserver.status."
        return {
            int(name[len(prefix):]): value
            for name, value in self.metrics.counters(prefix).items()
        }

    @property
    def bytes_on_wire(self) -> int:
        """Total response bytes as encoded for the wire."""
        return self._bytes_counter.value

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "requests_served": self.requests_served,
                "failures": self.failures,
                "served_per_worker": list(self.served_per_worker),
                "total_queue_wait_seconds": self.total_queue_wait_seconds,
                "status_counts": dict(self.status_counts),
                "bytes_on_wire": self.bytes_on_wire,
            }
