"""A threaded request front end for the application tier.

The paper's runtime exists to serve "a high number of users" (§1): the
servlet container dispatches each incoming request to a worker thread,
and every tier below — pooled connections, shared business components,
the two-level cache — is built to be shared by those threads.  This
module is that dispatch layer for the reproduction: a
:class:`ThreadedAppServer` owns N worker threads which pull
:class:`~repro.mvc.http.HttpRequest` objects off a queue and run them
through the application's full request path concurrently.

Experiment E13 drives it to show that read-heavy traffic scales with
workers (threads overlap the data tier's simulated I/O waits) while
write-heavy traffic stays linearizable on the rdb tier's write lock.

:meth:`ThreadedAppServer.listen` adds a real socket front in the
classic thread-per-connection shape: each accepted connection gets a
worker slot for its whole keep-alive lifetime, protocol state
delegated to the shared sans-IO :mod:`repro.httpcore` machine (the
same parser/encoder/keep-alive logic the async edge uses, so the two
edges emit byte-identical responses by construction).  A connection
holds its slot while idle between requests — the architectural cost
E19 measures against the event-loop edge.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import Future

from repro.errors import ContainerError
from repro.httpcore import (
    HttpConnection,
    ProtocolError,
    encode_simple,
    http_date,
)
from repro.mvc.http import HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry

_STOP = object()


class ThreadedAppServer:
    """Dispatches requests across a pool of worker threads.

    ``app`` is anything with ``handle(request) -> HttpResponse`` (a
    :class:`~repro.app.WebApplication`, with or without a deployed
    business tier).  Use as a context manager, or call :meth:`start` /
    :meth:`stop` explicitly.
    """

    def __init__(self, app, workers: int = 4, queue_capacity: int = 0,
                 idle_timeout: float = 5.0):
        if workers <= 0:
            raise ContainerError("an app server needs at least one worker")
        self.app = app
        self.workers = workers
        self.idle_timeout = idle_timeout
        self._queue: queue.Queue = queue.Queue(queue_capacity)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        # socket front (listen()): a worker slot per live connection
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_slots: threading.Semaphore | None = None
        self._open_sockets: set[socket.socket] = set()
        self._stopping = False
        self.requests_served = 0
        self.failures = 0  # requests whose handler raised (bugs, not 4xx/5xx)
        self.served_per_worker: list[int] = []
        self.total_queue_wait_seconds = 0.0
        # Delivery-tier observability: what actually crossed the wire.
        # Counters live in a per-server registry (a restarted server
        # starts from zero without disturbing the application's
        # metrics); the snapshot is exported into the application's
        # registry as an ``appserver`` collector for ``/_status``.
        self.metrics = MetricsRegistry()
        self._bytes_counter = self.metrics.counter("appserver.bytes_on_wire")
        app_obs = getattr(getattr(app, "ctx", None), "obs", None)
        if app_obs is not None:
            app_obs.metrics.register_collector("appserver", self.stats)

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    def start(self) -> "ThreadedAppServer":
        if self._threads:
            raise ContainerError("app server already started")
        self.served_per_worker = [0] * self.workers
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._work, args=(index,),
                name=f"appserver-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, close_app: bool = False) -> None:
        """Drain the workers and join them.

        With ``close_app=True`` the application itself is shut down
        after the last worker exits (``app.close()``), which flushes and
        closes a durable data tier deterministically — every commit the
        workers acknowledged is on disk before ``stop`` returns.  The
        default leaves the application running (seed behaviour: servers
        are routinely restarted against a live application)."""
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            open_sockets = list(self._open_sockets)
        for sock in open_sockets:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        if self._threads:
            for _ in self._threads:
                self._queue.put(_STOP)
            for thread in self._threads:
                thread.join()
            self._threads = []
        self._stopping = False
        if close_app:
            close = getattr(self.app, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ThreadedAppServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- dispatch ------------------------------------------------------------

    def submit(self, request: HttpRequest) -> Future:
        """Enqueue one request; the future resolves to its response."""
        if not self._threads:
            raise ContainerError("app server is not running")
        future: Future = Future()
        self._queue.put((request, future, time.monotonic()))
        return future

    def get(self, url: str, session_id: str | None = None,
            headers: dict | None = None) -> Future:
        return self.submit(HttpRequest.from_url(
            url, headers=headers, session_id=session_id
        ))

    def serve(self, requests, timeout: float | None = None) -> list[HttpResponse]:
        """Submit every request and wait for all responses, in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    def _work(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request, future, enqueued_at = item
            waited = time.monotonic() - enqueued_at
            try:
                response = self.app.handle(request)
            except BaseException as exc:  # surface to the submitter
                with self._lock:
                    self.failures += 1
                future.set_exception(exc)
            else:
                with self._lock:
                    self.requests_served += 1
                    self.served_per_worker[index] += 1
                    self.total_queue_wait_seconds += waited
                self._count_response(response)
                future.set_result(response)

    def _count_response(self, response: HttpResponse) -> None:
        """Delivery counters, shared by the queue and socket fronts."""
        self.metrics.counter(f"appserver.status.{response.status}").inc()
        self._bytes_counter.inc(response.wire_length)

    # -- the socket front ------------------------------------------------------

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Serve HTTP over a real socket, thread-per-connection.

        Each accepted connection takes one of ``workers`` slots for its
        *entire* keep-alive lifetime — the classic servlet-container
        shape, where an idle keep-alive connection still pins a thread.
        Excess connections queue in the listen backlog until a slot
        frees.  Protocol behaviour (parsing, keep-alive vs close,
        session cookies, response encoding) is entirely the shared
        :mod:`repro.httpcore` machine.  Returns the bound address.
        """
        if self._listener is not None:
            raise ContainerError("app server is already listening")
        self._conn_slots = threading.Semaphore(self.workers)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(128)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,),
            name="appserver-accept", daemon=True,
        )
        self._accept_thread.start()
        return listener.getsockname()

    @property
    def address(self) -> tuple | None:
        """The bound (host, port) of the socket front, if listening."""
        return self._listener.getsockname() if self._listener else None

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            # take the slot *before* accepting: connections past the
            # worker count wait in the kernel backlog, which is exactly
            # the thread-per-connection bottleneck E19 measures
            self._conn_slots.acquire()
            try:
                sock, _addr = listener.accept()
            except OSError:  # listener closed by stop()
                self._conn_slots.release()
                return
            with self._lock:
                self._open_sockets.add(sock)
            threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="appserver-conn", daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        conn = HttpConnection()
        sock.settimeout(self.idle_timeout)
        try:
            while not conn.should_close and not self._stopping:
                try:
                    data = sock.recv(65536)
                except (socket.timeout, OSError):
                    break
                if not data:
                    break
                try:
                    requests = conn.receive_bytes(data)
                except ProtocolError as exc:
                    sock.sendall(encode_simple(400, f"bad request: {exc}",
                                               date=http_date()))
                    break
                for request in requests:
                    try:
                        response = self.app.handle(request)
                    except Exception:  # handler bug: answer 500, hang up
                        with self._lock:
                            self.failures += 1
                        sock.sendall(encode_simple(
                            500, "internal server error", date=http_date()
                        ))
                        conn.mark_close()
                        break
                    self._count_response(response)
                    with self._lock:
                        self.requests_served += 1
                    sock.sendall(conn.send_response(
                        request, response, date=http_date()
                    ))
                    if conn.should_close:
                        break
        except OSError:
            pass  # peer vanished mid-write; nothing left to tell it
        finally:
            with self._lock:
                self._open_sockets.discard(sock)
            try:
                sock.close()
            except OSError:
                pass
            self._conn_slots.release()

    # -- observation ----------------------------------------------------------

    @property
    def status_counts(self) -> dict[int, int]:
        """Responses delivered, by HTTP status (read from the registry)."""
        prefix = "appserver.status."
        return {
            int(name[len(prefix):]): value
            for name, value in self.metrics.counters(prefix).items()
        }

    @property
    def bytes_on_wire(self) -> int:
        """Total response bytes as encoded for the wire."""
        return self._bytes_counter.value

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "requests_served": self.requests_served,
                "failures": self.failures,
                "served_per_worker": list(self.served_per_worker),
                "total_queue_wait_seconds": self.total_queue_wait_seconds,
                "status_counts": dict(self.status_counts),
                "bytes_on_wire": self.bytes_on_wire,
            }
