"""Wiring the Web tier to the application server (§4, Figure 6).

"In this case, the action classes call the appropriate business objects,
which implement the actual application functions."

:func:`deploy_business_tier` deploys the generic page and operation
services of a running :class:`~repro.app.WebApplication` as pooled
components, and swaps the front controller's actions for variants that
invoke them through the container — the exact topology of Figure 6.
The same container handle can then be used by non-Web clients, and
:meth:`ComponentContainer.sweep` reclaims idle instances between bursts.
"""

from __future__ import annotations

from repro.appserver.container import ComponentContainer, ComponentDescriptor
from repro.mvc.actions import ActionOutcome, OperationAction, PageAction
from repro.services import GenericOperationService, GenericPageService

PAGE_COMPONENT = "page-service"
OPERATION_COMPONENT = "operation-service"


class ContainerPageAction(PageAction):
    """A page action that delegates computation to the container."""

    def __init__(self, ctx, container: ComponentContainer):
        super().__init__(ctx)
        self.container = container

    def perform(self, mapping, request, session) -> ActionOutcome:
        descriptor = self.ctx.registry.page(mapping.page_id)
        params = dict(request.params)
        if session.is_authenticated:
            params.setdefault("session.user", session.user_oid)
        page_result = self.container.invoke(
            PAGE_COMPONENT, "compute_page", descriptor, params
        )
        return ActionOutcome(kind="view", page_result=page_result,
                             view=mapping.view)


class ContainerOperationAction(OperationAction):
    """An operation action that executes through the container."""

    def __init__(self, ctx, container: ComponentContainer):
        super().__init__(ctx)
        self.container = container
        # Replace the in-servlet service with a container-invoking shim
        # so the chaining logic in OperationAction.perform stays shared.
        action = self

        class _Shim:
            def execute(self, descriptor, inputs, session):
                return action.container.invoke(
                    OPERATION_COMPONENT, "execute", descriptor, inputs, session
                )

        self.operation_service = _Shim()


def deploy_business_tier(
    app,
    container: ComponentContainer | None = None,
    min_instances: int = 0,
    max_instances: int = 16,
    idle_timeout: float = 60.0,
) -> ComponentContainer:
    """Move ``app``'s business logic into an application server.

    Returns the container (creating one when not supplied).  After this
    call, every request served by ``app`` goes Controller → action →
    container → pooled generic service, and any other client may invoke
    the same components directly.
    """
    if container is None:
        container = ComponentContainer()
    ctx = app.ctx
    container.deploy(ComponentDescriptor(
        PAGE_COMPONENT,
        factory=lambda: GenericPageService(ctx),
        min_instances=min_instances,
        max_instances=max_instances,
        idle_timeout=idle_timeout,
    ))
    container.deploy(ComponentDescriptor(
        OPERATION_COMPONENT,
        factory=lambda: GenericOperationService(ctx),
        min_instances=min_instances,
        max_instances=max_instances,
        idle_timeout=idle_timeout,
    ))
    app.front.page_action = ContainerPageAction(ctx, container)
    app.front.operation_action = ContainerOperationAction(ctx, container)
    return container
