"""A process-per-core worker fleet over WAL-shipping replication.

The threaded app server scales until the workload turns CPU-bound —
E13's ceiling — because every worker thread shares one interpreter
lock and one database write lock.  The fleet is the shared-nothing
answer the paper's tier separation points at: one *primary* process
owns the durable database and takes every write; N *worker* processes
each own a full application stack over a read-only replica
(:mod:`repro.rdb.replication`) and take the reads.  Workers share
nothing at runtime — not the GIL, not the write lock, not a cache —
yet stay consistent because each replays the primary's WAL into its
own invalidation bus.

Consistency contract (see docs/REPLICATION.md):

- Replication is asynchronous: an un-annotated read may be stale by
  the replication lag (milliseconds here).
- A write's response carries the primary's commit LSN in the
  ``X-Repro-Lsn`` header (the *write token*).  A read that sends that
  token back as ``X-Repro-Min-Lsn`` blocks on the worker until replay
  catches up — read-your-writes per client, no cross-process locks.
- A worker that cannot catch up within its gate timeout answers 503
  rather than serve a read older than the client's own write.

The supervisor process runs the primary application behind its own
:class:`~repro.appserver.threaded.ThreadedAppServer` socket, runs the
:class:`~repro.rdb.replication.ReplicationServer`, and spawns workers
as real subprocesses (``python -m repro.appserver.fleet_worker``) —
fresh interpreters, so nothing leaks across the process boundary by
accident.  Per-worker lag/replay stats surface in the primary's
``/_status`` via the ``replication`` collector.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
import threading
import time

from repro.errors import ContainerError
from repro.httpcore.client import WireClient
from repro.mvc.http import HttpResponse

#: response header a primary stamps with its commit LSN (write token)
LSN_HEADER = "X-Repro-Lsn"
#: request header a replica gate blocks on (read-your-writes)
MIN_LSN_HEADER = "X-Repro-Min-Lsn"

_READY_PREFIX = "FLEET-WORKER-READY "


class PrimaryLsnStamp:
    """Wraps the primary application to stamp every response with the
    current commit LSN — the write token a router or client threads
    through to its next read."""

    def __init__(self, app):
        self.app = app

    def handle(self, request) -> HttpResponse:
        response = self.app.handle(request)
        response.headers[LSN_HEADER] = str(self.app.database.last_lsn)
        return response

    def __getattr__(self, name):
        return getattr(self.app, name)


class ReplicaGate:
    """Wraps a worker's application with the LSN wait gate.

    A request carrying ``X-Repro-Min-Lsn`` waits (bounded) for the
    replica to replay up to that token before the read proceeds; a
    timeout answers 503 with ``Retry-After`` instead of serving a
    stale read.  Responses are stamped with the replica's applied LSN
    so clients can observe replay progress.
    """

    def __init__(self, app, client, wait_timeout: float = 5.0):
        self.app = app
        self.client = client
        self.wait_timeout = wait_timeout
        self.lsn_waits = 0
        self.lsn_timeouts = 0

    def handle(self, request) -> HttpResponse:
        raw = request.headers.get(MIN_LSN_HEADER)
        if raw:
            self.lsn_waits += 1
            if not self.client.wait_for_lsn(int(raw), self.wait_timeout):
                self.lsn_timeouts += 1
                return HttpResponse(
                    status=503,
                    body=(
                        f"replica behind requested lsn {raw} "
                        f"(applied {self.app.database.last_lsn})"
                    ),
                    content_type="text/plain",
                    headers={"Retry-After": "1"},
                )
        response = self.app.handle(request)
        response.headers[LSN_HEADER] = str(self.app.database.last_lsn)
        return response

    def stats(self) -> dict:
        return {"lsn_waits": self.lsn_waits,
                "lsn_timeouts": self.lsn_timeouts}

    def __getattr__(self, name):
        return getattr(self.app, name)


class WorkerHandle:
    """One spawned worker process and what the supervisor knows of it."""

    def __init__(self, name: str, process: subprocess.Popen):
        self.name = name
        self.process = process
        self.http_address: tuple | None = None

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class FleetSupervisor:
    """Runs the primary and a fleet of replica worker processes.

    ``app`` is the primary application (over a durable database —
    replication ships its WAL).  ``worker_factory`` is a dotted
    ``"module:callable"`` path; each worker process imports it and
    calls it with its replica database to build an identical
    application stack.  The factory must be importable in a fresh
    interpreter — the supervisor forwards its own ``sys.path``.
    """

    def __init__(self, app, worker_factory: str, workers: int = 4,
                 worker_threads: int = 4, primary_threads: int = 2,
                 host: str = "127.0.0.1", gate_timeout: float = 5.0,
                 start_timeout: float = 30.0):
        if workers <= 0:
            raise ContainerError("a fleet needs at least one worker")
        self.app = app
        self.worker_factory = worker_factory
        self.workers = workers
        self.worker_threads = worker_threads
        self.primary_threads = primary_threads
        self.host = host
        self.gate_timeout = gate_timeout
        self.start_timeout = start_timeout
        self.replication_server = None
        self.primary_server = None
        self.primary_address: tuple | None = None
        self.handles: list[WorkerHandle] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FleetSupervisor":
        from repro.appserver.threaded import ThreadedAppServer
        from repro.rdb.replication import ReplicationServer

        if self.replication_server is not None:
            raise ContainerError("fleet already started")
        self.replication_server = ReplicationServer(
            self.app.database, host=self.host
        )
        replication_address = self.replication_server.start()
        obs = getattr(getattr(self.app, "ctx", None), "obs", None)
        if obs is not None:
            obs.metrics.register_collector(
                "replication", self.replication_server.stats
            )
        self.primary_server = ThreadedAppServer(
            PrimaryLsnStamp(self.app), workers=self.primary_threads
        ).start()
        self.primary_address = self.primary_server.listen(self.host, 0)
        for index in range(self.workers):
            self.handles.append(
                self._spawn_worker(f"worker-{index}", replication_address)
            )
        deadline = time.monotonic() + self.start_timeout
        for handle in self.handles:
            self._await_ready(handle, deadline)
        return self

    def _spawn_worker(self, name: str,
                      replication_address: tuple) -> WorkerHandle:
        config = {
            "name": name,
            "factory": self.worker_factory,
            "replication": list(replication_address),
            "host": self.host,
            "threads": self.worker_threads,
            "gate_timeout": self.gate_timeout,
            "sys_path": [p for p in sys.path if p],
        }
        # ``-m`` resolves the worker module before the config's sys_path
        # applies, so the interpreter needs repro importable up front.
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = os.pathsep.join(
            config["sys_path"] + ([existing] if existing else [])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.appserver.fleet_worker",
             json.dumps(config)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        return WorkerHandle(name, process)

    def _await_ready(self, handle: WorkerHandle, deadline: float) -> None:
        """Read the worker's stdout until its READY line (it prints
        nothing before that except crash tracebacks, which we surface)."""
        lines: list[str] = []
        while True:
            if time.monotonic() > deadline:
                self.stop()
                raise ContainerError(
                    f"fleet worker {handle.name} did not start in time:\n"
                    + "".join(lines[-20:])
                )
            line = handle.process.stdout.readline()
            if not line:
                self.stop()
                raise ContainerError(
                    f"fleet worker {handle.name} exited during startup:\n"
                    + "".join(lines[-20:])
                )
            if line.startswith(_READY_PREFIX):
                info = json.loads(line[len(_READY_PREFIX):])
                handle.http_address = (info["host"], info["port"])
                return
            lines.append(line)

    def stop(self) -> None:
        """Stop workers (graceful, then hard), then the primary edge
        and the replication server.  The primary application itself is
        left to its owner."""
        for handle in self.handles:
            if handle.alive:
                try:
                    handle.process.stdin.write("stop\n")
                    handle.process.stdin.flush()
                    handle.process.stdin.close()
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for handle in self.handles:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.terminate()
                try:
                    handle.process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    handle.process.kill()
                    handle.process.wait()
        self.handles = []
        if self.primary_server is not None:
            self.primary_server.stop()
            self.primary_server = None
        if self.replication_server is not None:
            self.replication_server.stop()
            self.replication_server = None

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing / tokens -------------------------------------------------

    @property
    def worker_addresses(self) -> list[tuple]:
        return [h.http_address for h in self.handles
                if h.http_address is not None]

    def write_token(self) -> int:
        """The current primary commit LSN — waiting on it guarantees a
        subsequent replica read sees every commit up to now."""
        return self.app.database.last_lsn

    # -- observation --------------------------------------------------------

    def status(self) -> dict:
        """Supervisor view: primary LSN plus per-worker lag/liveness
        (from the replication server's ACK tracking — no worker HTTP
        round-trips, so it is safe inside a metrics collector)."""
        replication = (
            self.replication_server.stats()
            if self.replication_server is not None else {}
        )
        return {
            "primary_lsn": self.app.database.last_lsn,
            "primary_address": self.primary_address,
            "workers_alive": sum(1 for h in self.handles if h.alive),
            "workers_total": len(self.handles),
            "replication": replication,
        }


class FleetClient:
    """A client-side router: reads round-robin across workers, writes
    to the primary, write tokens threaded automatically.

    Connections are keep-alive and per-thread (a :class:`WireClient`
    is one socket), so N client threads drive the fleet concurrently
    without sharing sockets.  ``read_your_writes=True`` makes every
    read after a write on the *same client* carry the last write
    token.
    """

    def __init__(self, supervisor: FleetSupervisor,
                 read_your_writes: bool = True):
        if not supervisor.worker_addresses:
            raise ContainerError("fleet has no ready workers to read from")
        self.supervisor = supervisor
        self.read_your_writes = read_your_writes
        self._round_robin = itertools.cycle(
            list(supervisor.worker_addresses)
        )
        self._rr_lock = threading.Lock()
        self._local = threading.local()

    def _connection(self, address: tuple) -> WireClient:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        client = pool.get(address)
        if client is None:
            client = pool[address] = WireClient(address, cookies=True)
        return client

    @property
    def last_write_token(self) -> int:
        return getattr(self._local, "token", 0)

    def _next_worker(self) -> tuple:
        with self._rr_lock:
            return next(self._round_robin)

    def read(self, target: str, min_lsn: int | None = None,
             worker: tuple | None = None):
        """GET from a worker replica.  ``min_lsn`` (or the thread's last
        write token, with ``read_your_writes``) rides the gate header."""
        address = worker or self._next_worker()
        token = min_lsn
        if token is None and self.read_your_writes:
            token = self.last_write_token or None
        headers = {MIN_LSN_HEADER: str(token)} if token else None
        client = self._connection(address)
        try:
            return client.request(target, headers=headers)
        except OSError:
            # keep-alive socket died (worker restart, idle timeout):
            # one reconnect attempt on a fresh connection
            client.close()
            return client.request(target, headers=headers)

    def write(self, target: str, method: str = "GET"):
        """Send a mutating request to the primary; remembers the commit
        LSN it answered with as this thread's write token."""
        client = self._connection(self.supervisor.primary_address)
        try:
            response = client.request(target, method=method)
        except OSError:
            client.close()
            response = client.request(target, method=method)
        token = response.headers.get(LSN_HEADER)
        if token is not None:
            self._local.token = int(token)
        return response

    def close(self) -> None:
        pool = getattr(self._local, "pool", None)
        if pool:
            for client in pool.values():
                client.close()
            pool.clear()
