"""The EJB-like component container.

Fixes the two §4 limitations of servlet-tier business logic:

1. "Page and unit services live in the servlet container and cannot be
   called by other applications" — here any client (Web or not) calls
   :meth:`ComponentContainer.invoke`;
2. "The number of clones must be decided statically, and cannot be
   adapted at runtime.  If the traffic of a certain application reduces,
   the objects implementing its services remain in main memory" — here
   each component's instance pool grows on demand up to ``max_instances``
   and :meth:`sweep` passivates instances idle longer than
   ``idle_timeout`` down to ``min_instances``.

Time is injected (``clock``) so the scaling experiments are
deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ContainerError
from repro.util import SystemClock


@dataclass
class ComponentDescriptor:
    """Deployment descriptor of one business component (an EJB)."""

    name: str
    factory: object  # callable returning a fresh instance
    min_instances: int = 0
    max_instances: int = 32
    idle_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.min_instances < 0:
            raise ContainerError("min_instances cannot be negative")
        if self.max_instances < max(1, self.min_instances):
            raise ContainerError("max_instances must cover min_instances")
        if self.idle_timeout <= 0:
            raise ContainerError("idle_timeout must be positive")


@dataclass
class _Pool:
    descriptor: ComponentDescriptor
    idle: list = field(default_factory=list)  # (instance, last_used)
    busy: int = 0
    created_total: int = 0
    passivated_total: int = 0
    peak_resident: int = 0

    @property
    def resident(self) -> int:
        return len(self.idle) + self.busy


class ComponentContainer:
    """Holds every deployed component and its instance pool.

    Thread-safe: acquisition, release, deployment, and sweeping all
    synchronize on one condition variable, so worker threads of a
    :class:`~repro.appserver.threaded.ThreadedAppServer` can invoke
    components concurrently.  ``block_when_exhausted=True`` makes an
    invoke wait for a pooled instance instead of raising when a
    component is at ``max_instances``.
    """

    def __init__(self, clock=None, block_when_exhausted: bool = False,
                 acquire_timeout: float | None = None):
        self.clock = clock or SystemClock()
        self.block_when_exhausted = block_when_exhausted
        self.acquire_timeout = acquire_timeout
        self._cond = threading.Condition()
        self._pools: dict[str, _Pool] = {}
        self.invocations = 0

    # -- deployment ----------------------------------------------------------

    def deploy(self, descriptor: ComponentDescriptor) -> None:
        with self._cond:
            if descriptor.name in self._pools:
                raise ContainerError(
                    f"component {descriptor.name!r} already deployed"
                )
            pool = _Pool(descriptor)
            for _ in range(descriptor.min_instances):
                pool.idle.append((descriptor.factory(), self.clock.now()))
                pool.created_total += 1
            pool.peak_resident = pool.resident
            self._pools[descriptor.name] = pool

    def undeploy(self, name: str) -> None:
        with self._cond:
            self._pools.pop(name, None)

    def deployed(self) -> list[str]:
        with self._cond:
            return sorted(self._pools)

    def _pool(self, name: str) -> _Pool:
        with self._cond:
            pool = self._pools.get(name)
            if pool is None:
                raise ContainerError(f"no component deployed as {name!r}")
            return pool

    # -- invocation -------------------------------------------------------------

    def invoke(self, name: str, method: str, *args, **kwargs):
        """Call ``method`` on a pooled instance of component ``name``.

        Usable by the Web tier's action classes and by any other client
        (the §4 sharing property).  The method itself runs outside the
        container lock, so slow components never serialize the tier.
        """
        pool = self._pool(name)
        instance = self._acquire(pool, block=self.block_when_exhausted)
        try:
            bound = getattr(instance, method)
            with self._cond:
                self.invocations += 1
            return bound(*args, **kwargs)
        finally:
            self._release(pool, instance)

    def _acquire(self, pool: _Pool, block: bool = False):
        with self._cond:
            deadline = (
                None if self.acquire_timeout is None
                else self.clock.now() + self.acquire_timeout
            )
            while True:
                if pool.idle:
                    instance, _last_used = pool.idle.pop()
                    pool.busy += 1
                    return instance
                if pool.resident < pool.descriptor.max_instances:
                    instance = pool.descriptor.factory()
                    pool.created_total += 1
                    pool.busy += 1
                    pool.peak_resident = max(pool.peak_resident,
                                             pool.resident)
                    return instance
                if not block:
                    raise ContainerError(
                        f"component {pool.descriptor.name!r} at max instances "
                        f"({pool.descriptor.max_instances})"
                    )
                timeout = None
                if deadline is not None:
                    timeout = deadline - self.clock.now()
                    if timeout <= 0:
                        raise ContainerError(
                            f"component {pool.descriptor.name!r} at max "
                            f"instances ({pool.descriptor.max_instances}; "
                            f"timed out waiting)"
                        )
                self._cond.wait(timeout)

    def _release(self, pool: _Pool, instance) -> None:
        with self._cond:
            pool.busy -= 1
            pool.idle.append((instance, self.clock.now()))
            pool.peak_resident = max(pool.peak_resident, pool.resident)
            self._cond.notify()

    # -- adaptive scaling ----------------------------------------------------------

    def sweep(self) -> int:
        """Passivate instances idle past their timeout (down to min).

        Returns how many instances were released — the memory the static
        clone architecture would have kept occupied.
        """
        with self._cond:
            return self._sweep_locked()

    def _sweep_locked(self) -> int:
        now = self.clock.now()
        passivated = 0
        for pool in self._pools.values():
            timeout = pool.descriptor.idle_timeout
            survivors: list = []
            # Oldest first, so the survivors are the most recently used.
            for entry in sorted(pool.idle, key=lambda e: e[1]):
                _instance, last_used = entry
                resident_if_kept = pool.busy + len(survivors) + 1
                expired = now - last_used >= timeout
                if expired and resident_if_kept > pool.descriptor.min_instances:
                    pool.passivated_total += 1
                    passivated += 1
                else:
                    survivors.append(entry)
            pool.idle = survivors
        return passivated

    # -- observation ------------------------------------------------------------------

    def resident_instances(self, name: str | None = None) -> int:
        with self._cond:
            if name is not None:
                return self._pool(name).resident
            return sum(pool.resident for pool in self._pools.values())

    def pool_stats(self, name: str) -> dict:
        with self._cond:
            pool = self._pool(name)
            return {
                "resident": pool.resident,
                "busy": pool.busy,
                "idle": len(pool.idle),
                "created_total": pool.created_total,
                "passivated_total": pool.passivated_total,
                "peak_resident": pool.peak_resident,
            }
