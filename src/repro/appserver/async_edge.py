"""The event-loop edge: one thread owns every connection.

The thread-per-connection front (:meth:`ThreadedAppServer.listen`) pins
a worker for a connection's whole keep-alive lifetime — mostly spent
idle, waiting for the next request.  This module inverts the shape: a
single asyncio event loop owns *all* accepted sockets, and threads are
spent only on work that actually computes.

Per request the edge makes a three-way triage, cheapest first:

1. **inline** — :meth:`FrontController.probe_cached` answers page-cache
   hits (stored 200s and ETag 304s) directly on the loop: no thread
   handoff, no rendering, bounded lock-cheap work;
2. **streamed** — on a cache miss with a streaming-capable view
   renderer, :meth:`FrontController.handle_streaming` yields the
   response head plus the compiled template's static prefix
   immediately (chunked transfer encoding) while a worker thread runs
   the unit services, each rendered slot crossing back to the loop as
   it completes;
3. **buffered** — everything else (operations, redirects, misses
   without streaming) runs ``app.handle`` on the bounded worker pool
   and is written out whole.

Protocol behaviour — parsing, keep-alive, session cookies, encoding —
is the same sans-IO :mod:`repro.httpcore` machine the threaded edge
uses, which is what makes the two edges byte-identical by construction
(E19's oracle).  The edge keeps its own metrics registry (open
connections, inline hits, streamed bytes, time-to-first-byte) and
exports it as an ``edge`` collector on the application's ``/_status``.

The loop runs in a daemon thread so synchronous tests and benchmarks
can drive the server with blocking clients.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ContainerError
from repro.httpcore import (
    HttpConnection,
    LAST_CHUNK,
    ProtocolError,
    encode_chunk,
    encode_simple,
    http_date,
)
from repro.obs.metrics import MetricsRegistry

#: sentinel closing a stream's chunk queue
_EOF = object()


class AsyncAppServer:
    """An asyncio edge in front of a (threaded) application.

    ``app`` is anything with ``handle(request) -> HttpResponse``; when
    its front controller exposes ``probe_cached`` / ``handle_streaming``
    the edge uses them for the inline and streamed paths.  ``workers``
    bounds the compute pool — the *same* number the threaded edge gets
    in E19, so the comparison isolates what owns the idle connections,
    not how much computes.
    """

    def __init__(self, app, workers: int = 4, idle_timeout: float = 5.0,
                 stream: bool = True):
        if workers <= 0:
            raise ContainerError("the async edge needs at least one worker")
        self.app = app
        self.workers = workers
        self.idle_timeout = idle_timeout
        self.stream = stream
        self._front = getattr(app, "front", None) or app
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._address: tuple | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None

        self.metrics = MetricsRegistry()
        self._open_gauge = self.metrics.gauge("edge.open_connections")
        self._connections = self.metrics.counter("edge.connections_total")
        self._requests = self.metrics.counter("edge.requests_total")
        self._inline_hits = self.metrics.counter("edge.inline_hits")
        self._inline_304s = self.metrics.counter("edge.inline_304s")
        self._dispatches = self.metrics.counter("edge.worker_dispatches")
        self._failures = self.metrics.counter("edge.handler_failures")
        self._streams = self.metrics.counter("edge.streamed_responses")
        self._streamed_bytes = self.metrics.counter("edge.streamed_bytes")
        self._wire_bytes = self.metrics.counter("edge.bytes_on_wire")
        self._ttfb = self.metrics.histogram("edge.ttfb_seconds")
        app_obs = getattr(getattr(app, "ctx", None), "obs", None)
        if app_obs is not None:
            app_obs.metrics.register_collector("edge", self.stats)

    # -- lifecycle -------------------------------------------------------------

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start the loop thread and bind; returns the bound address."""
        if self._loop_thread is not None:
            raise ContainerError("async edge is already listening")
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="edge-worker"
        )
        self._loop_thread = threading.Thread(
            target=self._run_loop, args=(host, port),
            name="edge-loop", daemon=True,
        )
        self._loop_thread.start()
        if not self._started.wait(timeout=10):
            raise ContainerError("async edge failed to start")
        assert self._address is not None
        return self._address

    @property
    def address(self) -> tuple | None:
        return self._address

    def stop(self) -> None:
        """Close the listener and every connection; join the loop."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)
            self._loop_thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._loop = None
        self._server = None
        self._address = None
        self._started.clear()

    def __enter__(self) -> "AsyncAppServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run_loop(self, host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve(host, port))
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

    async def _serve(self, host: str, port: int) -> None:
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, backlog=1024
        )
        self._address = self._server.sockets[0].getsockname()
        self._started.set()
        async with self._server:
            await self._stop_event.wait()

    # -- the connection loop ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = HttpConnection()
        self._connections.inc()
        self._open_gauge.inc()
        try:
            while not conn.should_close:
                try:
                    data = await asyncio.wait_for(
                        reader.read(65536), timeout=self.idle_timeout
                    )
                except (asyncio.TimeoutError, ConnectionError):
                    break
                if not data:
                    break
                try:
                    requests = conn.receive_bytes(data)
                except ProtocolError as exc:
                    writer.write(encode_simple(
                        400, f"bad request: {exc}", date=http_date()
                    ))
                    await writer.drain()
                    break
                for request in requests:
                    await self._serve_request(request, conn, writer)
                    if conn.should_close:
                        break
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer vanished or server stopping
        finally:
            self._open_gauge.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, request, conn: HttpConnection,
                             writer: asyncio.StreamWriter) -> None:
        self._requests.inc()
        started = time.perf_counter()

        # 1. inline: page-cache hits never leave the loop
        probe = getattr(self._front, "probe_cached", None)
        if probe is not None:
            response = probe(request)
            if response is not None:
                self._inline_hits.inc()
                if response.status == 304:
                    self._inline_304s.inc()
                payload = conn.send_response(request, response,
                                             date=http_date())
                writer.write(payload)
                self._ttfb.record(time.perf_counter() - started)
                self._wire_bytes.inc(len(payload))
                await writer.drain()
                return

        # 2/3. compute on a worker; a StreamedPage comes back early,
        # a buffered HttpResponse comes back complete
        loop = asyncio.get_running_loop()
        self._dispatches.inc()
        try:
            result = await loop.run_in_executor(
                self._pool, self._compute, request
            )
        except Exception:  # handler bug: answer 500, hang up
            self._failures.inc()
            payload = encode_simple(
                500, "internal server error", date=http_date()
            )
            conn.mark_close()
            writer.write(payload)
            self._wire_bytes.inc(len(payload))
            await writer.drain()
            return
        if isinstance(result, tuple):  # ("stream", StreamedPage)
            await self._write_stream(request, result[1], conn, writer,
                                     started)
            return
        payload = conn.send_response(request, result, date=http_date())
        writer.write(payload)
        self._ttfb.record(time.perf_counter() - started)
        self._wire_bytes.inc(len(payload))
        await writer.drain()

    def _compute(self, request):
        """Worker-thread entry: streamed when possible, else buffered."""
        if self.stream:
            handle_streaming = getattr(self._front, "handle_streaming", None)
            if handle_streaming is not None:
                streamed = handle_streaming(request)
                if streamed is not None:
                    return ("stream", streamed)
        return self.app.handle(request)

    async def _write_stream(self, request, streamed, conn: HttpConnection,
                            writer: asyncio.StreamWriter,
                            started: float) -> None:
        """Send the head now, then relay chunks as a worker renders them.

        The producer runs on the worker pool, pushing rendered chunks
        into an asyncio queue via ``call_soon_threadsafe``; the loop
        side writes and drains, so a slow reader backpressures only its
        own connection.  A reader that disconnects mid-stream flips
        ``abort`` — the producer stops rendering and the generator's
        ``close()`` releases the page-cache single-flight slot.
        """
        self._streams.inc()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        abort = threading.Event()
        done = {"completed": False}

        def produce() -> None:
            try:
                for chunk in streamed.chunks:
                    if abort.is_set():
                        return
                    if chunk:
                        loop.call_soon_threadsafe(queue.put_nowait, chunk)
                done["completed"] = True
            except Exception as exc:
                loop.call_soon_threadsafe(queue.put_nowait, exc)
            finally:
                streamed.chunks.close()  # releases the single-flight slot
                loop.call_soon_threadsafe(queue.put_nowait, _EOF)

        head = conn.send_response(request, streamed.response,
                                  date=http_date(), chunked=True)
        producer = loop.run_in_executor(self._pool, produce)
        try:
            writer.write(head)
            self._ttfb.record(time.perf_counter() - started)
            self._wire_bytes.inc(len(head))
            await writer.drain()
            while True:
                item = await queue.get()
                if item is _EOF:
                    break
                if isinstance(item, Exception):
                    # mid-stream failure: the head already promised a
                    # 200, so the only honest signal is a truncated
                    # chunked body + close
                    conn.mark_close()
                    return
                framed = encode_chunk(item.encode())
                writer.write(framed)
                self._streamed_bytes.inc(len(framed))
                self._wire_bytes.inc(len(framed))
                await writer.drain()
            writer.write(LAST_CHUNK)
            self._wire_bytes.inc(len(LAST_CHUNK))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            conn.mark_close()
            raise
        finally:
            abort.set()
            # drain the producer so the flight slot is released before
            # the connection object is torn down
            try:
                await producer
            except asyncio.CancelledError:
                pass
            if not done["completed"]:
                conn.mark_close()

    # -- observation -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "open_connections": self._open_gauge.value,
            "connections_total": self._connections.value,
            "requests_total": self._requests.value,
            "inline_hits": self._inline_hits.value,
            "inline_304s": self._inline_304s.value,
            "worker_dispatches": self._dispatches.value,
            "handler_failures": self._failures.value,
            "streamed_responses": self._streams.value,
            "streamed_bytes": self._streamed_bytes.value,
            "bytes_on_wire": self._wire_bytes.value,
            "ttfb": self._ttfb.to_dict(),
        }
