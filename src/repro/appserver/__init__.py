"""The application-server tier (paper §4, Figure 6).

"A better software organization is obtained by splitting the business
logic into the servlet engine and an application server ... the business
components are implemented as Enterprise JavaBeans (EJB) ... and can be
accessed by Web applications and other enterprise applications."

- :mod:`repro.appserver.container` — the EJB-like component container:
  per-component instance pools that grow under load and passivate when
  idle, shared by Web and non-Web clients;
- :mod:`repro.appserver.servlet_tier` — the baseline §4 argues against:
  statically cloned servlet containers whose service instances stay
  resident regardless of traffic;
- :mod:`repro.appserver.threaded` — the request front end: N worker
  threads pulling requests off a queue and running them through the
  full (thread-safe) request path concurrently, plus a
  thread-per-connection socket front on the shared
  :mod:`repro.httpcore` protocol machine;
- :mod:`repro.appserver.async_edge` — the event-loop edge: one thread
  owns every keep-alive connection, page-cache hits are served inline
  on the loop, computation runs on a bounded worker pool, cache-miss
  pages stream chunked while their unit services compute;
- :mod:`repro.appserver.fleet` — the process-per-core front end: a
  supervisor runs the write primary and spawns worker subprocesses
  (:mod:`repro.appserver.fleet_worker`) that each serve reads from
  their own WAL-shipped replica, with read-your-writes via LSN wait
  tokens.
"""

from repro.appserver.async_edge import AsyncAppServer
from repro.appserver.container import ComponentContainer, ComponentDescriptor
from repro.appserver.fleet import (
    LSN_HEADER,
    MIN_LSN_HEADER,
    FleetClient,
    FleetSupervisor,
    PrimaryLsnStamp,
    ReplicaGate,
)
from repro.appserver.integration import deploy_business_tier
from repro.appserver.servlet_tier import ServletTierDeployment
from repro.appserver.threaded import ThreadedAppServer

__all__ = [
    "AsyncAppServer",
    "ComponentContainer",
    "ComponentDescriptor",
    "FleetClient",
    "FleetSupervisor",
    "LSN_HEADER",
    "MIN_LSN_HEADER",
    "PrimaryLsnStamp",
    "ReplicaGate",
    "ServletTierDeployment",
    "ThreadedAppServer",
    "deploy_business_tier",
]
