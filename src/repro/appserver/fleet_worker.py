"""Fleet worker subprocess entry point.

Launched by :class:`repro.appserver.fleet.FleetSupervisor` as
``python -m repro.appserver.fleet_worker '<json-config>'``.  The worker
is a fresh interpreter: it opens a read-only replica database, streams
the primary's WAL into it, builds a full application stack on top with
the supervisor-provided factory, and serves reads behind the LSN wait
gate.  Protocol with the supervisor:

- startup: a single ``FLEET-WORKER-READY {"host":..,"port":..}`` line
  on stdout once the replica is bootstrapped and the socket is bound;
  anything before that (tracebacks) is startup failure detail.
- shutdown: any line (or EOF) on stdin — the worker stops its server,
  replication client, and database, then exits 0.
"""

from __future__ import annotations

import importlib
import json
import sys


def _resolve_factory(path: str):
    """Import a ``"module:callable"`` application factory."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"worker factory must be 'module:callable', got {path!r}"
        )
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def main(argv: list[str]) -> int:
    config = json.loads(argv[1])
    for entry in reversed(config.get("sys_path", [])):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    from repro.appserver.fleet import ReplicaGate
    from repro.appserver.threaded import ThreadedAppServer
    from repro.rdb.replication import ReplicationClient, open_replica

    name = config.get("name", "worker")
    database = open_replica(name=name)
    client = ReplicationClient(
        database,
        tuple(config["replication"]),
        name=name,
    )
    client.start()
    if not client.wait_for_bootstrap(timeout=30.0):
        raise TimeoutError(
            f"worker {name} never bootstrapped: {client.stats()!r}"
        )

    # The factory builds the same application stack the primary runs —
    # schema install is a no-op because the bootstrap already shipped
    # the tables, and the replica engine would refuse the writes.
    factory = _resolve_factory(config["factory"])
    app = factory(database)
    gate = ReplicaGate(app, client,
                       wait_timeout=config.get("gate_timeout", 5.0))
    obs = getattr(getattr(app, "ctx", None), "obs", None)
    if obs is not None:
        obs.metrics.register_collector("replication", client.stats)
        obs.metrics.register_collector("replication.gate", gate.stats)

    server = ThreadedAppServer(
        gate, workers=config.get("threads", 4)
    ).start()
    host, port = server.listen(config.get("host", "127.0.0.1"), 0)
    print(_ready_line(host, port), flush=True)

    try:
        sys.stdin.readline()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop(close_app=False)
        client.stop()
        app.close()
    return 0


def _ready_line(host: str, port: int) -> str:
    from repro.appserver.fleet import _READY_PREFIX

    return _READY_PREFIX + json.dumps({"host": host, "port": port})


if __name__ == "__main__":
    sys.exit(main(sys.argv))
