"""Entity-Relationship data model.

WebRatio specifies "the data requirements" with "a quite conventional"
ER model whose limitations "make the ER schema easier to map onto a
standard relational schema" (paper §1).  This package provides:

- :mod:`repro.er.model` — entities, typed attributes, binary
  relationships with cardinalities, and whole-model validation,
- :mod:`repro.er.mapping` — the deterministic ER→relational mapping
  (entity→table with an ``oid`` surrogate key, 1:N→foreign key,
  N:M→bridge table) plus the metadata the query generators consume,
- :mod:`repro.er.loader` — XML persistence of ER models (WebRatio
  projects store their models as XML documents).
"""

from repro.er.loader import er_model_from_xml, er_model_to_xml
from repro.er.mapping import (
    EntityMap,
    RelationalMapping,
    RelationshipMap,
    map_to_relational,
)
from repro.er.model import Attribute, Cardinality, Entity, ERModel, Relationship

__all__ = [
    "ERModel",
    "Entity",
    "Attribute",
    "Relationship",
    "Cardinality",
    "map_to_relational",
    "RelationalMapping",
    "EntityMap",
    "RelationshipMap",
    "er_model_from_xml",
    "er_model_to_xml",
]
