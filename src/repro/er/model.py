"""ER model elements.

The supported model is deliberately "conventional" (paper §1): named
entities with flat typed attributes, and *binary* relationships with
one of four cardinalities.  Every entity implicitly carries a surrogate
``oid`` identifier — WebML units address instances by object identifier,
and the relational mapping relies on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ERModelError, ValidationError
from repro.rdb.types import type_from_name
from repro.util import make_identifier


class Cardinality(enum.Enum):
    """Cardinality of a relationship, read source→target.

    ``ONE_TO_MANY`` means one source instance relates to many targets
    (the classic Volume→Issue shape).
    """

    ONE_TO_ONE = "1:1"
    ONE_TO_MANY = "1:N"
    MANY_TO_ONE = "N:1"
    MANY_TO_MANY = "N:M"

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        for member in cls:
            if member.value == text.upper():
                return member
        raise ERModelError(f"unknown cardinality {text!r} (use 1:1, 1:N, N:1, N:M)")

    def inverted(self) -> "Cardinality":
        mapping = {
            Cardinality.ONE_TO_MANY: Cardinality.MANY_TO_ONE,
            Cardinality.MANY_TO_ONE: Cardinality.ONE_TO_MANY,
        }
        return mapping.get(self, self)


@dataclass
class Attribute:
    """A typed entity attribute; ``type_name`` uses SQL DDL spelling."""

    name: str
    type_name: str = "VARCHAR(255)"
    required: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ERModelError("attribute name must be non-empty")
        # Fail fast on bad types instead of at mapping time.
        type_from_name(self.type_name)

    @property
    def column_name(self) -> str:
        return make_identifier(self.name)


@dataclass
class Entity:
    """An entity with its attributes.

    The implicit ``oid`` key is not listed among ``attributes``; it is
    added by the relational mapping.
    """

    name: str
    attributes: list[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ERModelError("entity name must be non-empty")

    def attribute(self, name: str) -> Attribute:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise ERModelError(f"entity {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]

    @property
    def table_name(self) -> str:
        return make_identifier(self.name)


@dataclass
class Relationship:
    """A named binary relationship between two entities.

    WebML navigates relationships in both directions; ``name`` labels the
    source→target direction (``VolumeToIssue``) and ``inverse_name``, when
    given, labels target→source (``IssueToVolume``).
    """

    name: str
    source: str
    target: str
    cardinality: Cardinality = Cardinality.ONE_TO_MANY
    inverse_name: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ERModelError("relationship name must be non-empty")
        if isinstance(self.cardinality, str):
            self.cardinality = Cardinality.parse(self.cardinality)


class ERModel:
    """A validated collection of entities and relationships."""

    def __init__(
        self,
        entities: list[Entity] | None = None,
        relationships: list[Relationship] | None = None,
        name: str = "schema",
    ):
        self.name = name
        self.entities: list[Entity] = []
        self.relationships: list[Relationship] = []
        for entity in entities or []:
            self.add_entity(entity)
        for relationship in relationships or []:
            self.add_relationship(relationship)

    # -- construction -----------------------------------------------------------

    def add_entity(self, entity: Entity) -> Entity:
        if any(e.name == entity.name for e in self.entities):
            raise ERModelError(f"duplicate entity {entity.name!r}")
        self.entities.append(entity)
        return entity

    def entity(self, name: str, attributes: list | None = None) -> Entity:
        """Fetch an entity by name or, when ``attributes`` is given,
        declare a new one (fluent model-building helper)."""
        if attributes is not None:
            parsed = [
                a if isinstance(a, Attribute) else Attribute(*a)
                if isinstance(a, tuple) else Attribute(a)
                for a in attributes
            ]
            return self.add_entity(Entity(name, parsed))
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise ERModelError(f"unknown entity {name!r}")

    def has_entity(self, name: str) -> bool:
        return any(e.name == name for e in self.entities)

    def add_relationship(self, relationship: Relationship) -> Relationship:
        if any(r.name == relationship.name for r in self.relationships):
            raise ERModelError(f"duplicate relationship {relationship.name!r}")
        self.relationships.append(relationship)
        return relationship

    def relate(
        self,
        name: str,
        source: str,
        target: str,
        cardinality: str | Cardinality = Cardinality.ONE_TO_MANY,
        inverse_name: str | None = None,
    ) -> Relationship:
        if isinstance(cardinality, str):
            cardinality = Cardinality.parse(cardinality)
        return self.add_relationship(
            Relationship(name, source, target, cardinality, inverse_name)
        )

    def relationship(self, name: str) -> Relationship:
        """Resolve ``name`` as a forward or inverse relationship name.

        Returns the relationship; callers that need the direction should
        use :meth:`resolve_role`.
        """
        relationship, _ = self.resolve_role(name)
        return relationship

    def resolve_role(self, name: str) -> tuple[Relationship, bool]:
        """Find a relationship by forward or inverse name.

        Returns ``(relationship, forward)`` where ``forward`` is False
        when ``name`` matched the inverse role.
        """
        for relationship in self.relationships:
            if relationship.name == name:
                return relationship, True
            if relationship.inverse_name == name:
                return relationship, False
        raise ERModelError(f"unknown relationship {name!r}")

    def has_relationship(self, name: str) -> bool:
        try:
            self.resolve_role(name)
            return True
        except ERModelError:
            return False

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValidationError` listing every problem found."""
        problems: list[str] = []
        for entity in self.entities:
            seen: set[str] = set()
            for attribute in entity.attributes:
                if attribute.name in seen:
                    problems.append(
                        f"entity {entity.name!r}: duplicate attribute "
                        f"{attribute.name!r}"
                    )
                seen.add(attribute.name)
            if "oid" in {a.column_name for a in entity.attributes}:
                problems.append(
                    f"entity {entity.name!r}: attribute collides with the "
                    "implicit oid key"
                )
        names_seen: set[str] = set()
        for relationship in self.relationships:
            for endpoint in (relationship.source, relationship.target):
                if not self.has_entity(endpoint):
                    problems.append(
                        f"relationship {relationship.name!r}: unknown entity "
                        f"{endpoint!r}"
                    )
            for role in (relationship.name, relationship.inverse_name):
                if role is None:
                    continue
                if role in names_seen:
                    problems.append(f"duplicate relationship role name {role!r}")
                names_seen.add(role)
        if problems:
            raise ValidationError(problems)
