"""The ER→relational mapping.

The paper: "this standard schema is then used by the WebRatio
implementation as either the schema of a newly designed database ... or
as a reference for mapping to pre-existing data sources" (§1).

Mapping rules (deterministic, so regeneration is idempotent):

- every entity becomes a table named after the entity (snake_case) with
  an ``oid INTEGER`` auto-increment primary key and one column per
  attribute;
- a 1:N (or N:1) relationship becomes a foreign-key column on the "many"
  side, named ``<role>_oid`` after the snake_case of the relationship
  name, with ON DELETE CASCADE (WebML's delete semantics remove the
  dependent connections);
- a 1:1 relationship becomes a unique foreign-key column on the target
  side;
- an N:M relationship becomes a bridge table ``<role>`` with the two
  endpoint foreign keys as a composite primary key.

The resulting :class:`RelationalMapping` is the *single source of truth*
for the SQL generators: it knows each entity's table and columns, and
how to join across any relationship role in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ERModelError
from repro.rdb.schema import Column, ForeignKey, Index, TableSchema
from repro.rdb.types import IntegerType, type_from_name
from repro.er.model import Cardinality, Entity, ERModel, Relationship
from repro.util import make_identifier


@dataclass
class EntityMap:
    """Where one entity's instances live."""

    entity: str
    table: str
    key_column: str = "oid"
    attribute_columns: dict[str, str] = field(default_factory=dict)

    def column_for(self, attribute: str) -> str:
        if attribute == "oid":
            return self.key_column
        try:
            return self.attribute_columns[attribute]
        except KeyError:
            raise ERModelError(
                f"entity {self.entity!r} has no attribute {attribute!r}"
            ) from None


@dataclass
class RelationshipMap:
    """How one relationship is realized relationally.

    ``kind`` is ``"fk"`` (a foreign-key column ``fk_column`` on
    ``fk_table``, pointing at ``fk_target_table``) or ``"bridge"``
    (a join table with ``source_column``/``target_column``).
    """

    relationship: str
    kind: str
    source_entity: str
    target_entity: str
    # fk realization
    fk_table: str | None = None
    fk_column: str | None = None
    fk_target_table: str | None = None
    fk_on_many_side_of_source: bool = True
    # bridge realization
    bridge_table: str | None = None
    source_column: str | None = None
    target_column: str | None = None


class RelationalMapping:
    """The full model→schema mapping plus join metadata."""

    def __init__(self, model: ERModel):
        self.model = model
        self.entity_maps: dict[str, EntityMap] = {}
        self.relationship_maps: dict[str, RelationshipMap] = {}
        self.schemas: list[TableSchema] = []

    def entity_map(self, entity: str) -> EntityMap:
        try:
            return self.entity_maps[entity]
        except KeyError:
            raise ERModelError(f"no mapping for entity {entity!r}") from None

    def relationship_map(self, name: str) -> tuple[RelationshipMap, bool]:
        """Resolve a forward or inverse role name to its mapping.

        Returns ``(mapping, forward)``.
        """
        relationship, forward = self.model.resolve_role(name)
        return self.relationship_maps[relationship.name], forward

    def table_for(self, entity: str) -> str:
        return self.entity_map(entity).table

    def table_entities(self) -> dict[str, tuple[str, ...]]:
        """Table name → ER entities whose derived content it carries.

        The reverse of the mapping rules, used to translate the storage
        engine's commit events (which speak in tables) back into the
        entity vocabulary the cache tiers invalidate by.  Entity tables
        map to their entity; a bridge table maps to *both* endpoint
        entities, since content shown for either side changes when the
        relationship does.
        """
        tables: dict[str, tuple[str, ...]] = {
            entity_map.table: (entity_map.entity,)
            for entity_map in self.entity_maps.values()
        }
        for rmap in self.relationship_maps.values():
            if rmap.kind == "bridge" and rmap.bridge_table:
                tables[rmap.bridge_table] = (
                    rmap.source_entity, rmap.target_entity
                )
        return tables

    def join_steps(self, role_name: str) -> list[dict]:
        """The join conditions to traverse a relationship role.

        Returns a list of step dicts, each with ``table``, ``left_on``
        (column of the *previous* table) and ``right_on`` (column of the
        step's table).  One step for FK relationships, two for bridges.
        The traversal starts from the role's *source side* table (the
        entity you already have) and ends at the other side's table.
        """
        mapping, forward = self.relationship_map(role_name)
        from_entity = mapping.source_entity if forward else mapping.target_entity
        to_entity = mapping.target_entity if forward else mapping.source_entity
        from_table = self.table_for(from_entity)
        to_table = self.table_for(to_entity)
        if mapping.kind == "bridge":
            near = mapping.source_column if forward else mapping.target_column
            far = mapping.target_column if forward else mapping.source_column
            return [
                {"table": mapping.bridge_table, "left_on": "oid", "right_on": near},
                {"table": to_table, "left_on": far, "right_on": "oid"},
            ]
        # FK realization: the fk column lives on fk_table.
        if mapping.fk_table == from_table:
            return [
                {"table": to_table, "left_on": mapping.fk_column, "right_on": "oid"}
            ]
        return [
            {"table": to_table, "left_on": "oid", "right_on": mapping.fk_column}
        ]

    def role_endpoints(self, role_name: str) -> tuple[str, str]:
        """(from_entity, to_entity) for a role name."""
        mapping, forward = self.relationship_map(role_name)
        if forward:
            return mapping.source_entity, mapping.target_entity
        return mapping.target_entity, mapping.source_entity

    def connection_write(self, role_name: str) -> dict:
        """How connect/disconnect operations write this role.

        Returns a dict with ``kind`` and either the fk location
        (``table``, ``column``, ``owner_entity``) or the bridge spec.
        """
        mapping, forward = self.relationship_map(role_name)
        if mapping.kind == "bridge":
            return {
                "kind": "bridge",
                "table": mapping.bridge_table,
                "source_column": mapping.source_column,
                "target_column": mapping.target_column,
                "forward": forward,
            }
        owner_entity = (
            mapping.source_entity
            if mapping.fk_table == self.table_for(mapping.source_entity)
            else mapping.target_entity
        )
        return {
            "kind": "fk",
            "table": mapping.fk_table,
            "column": mapping.fk_column,
            "owner_entity": owner_entity,
            "forward": forward,
        }


def map_to_relational(model: ERModel) -> RelationalMapping:
    """Run the mapping rules over a validated model."""
    model.validate()
    mapping = RelationalMapping(model)

    fk_extras: dict[str, list[Column]] = {}
    fk_constraints: dict[str, list[ForeignKey]] = {}
    fk_uniques: dict[str, list[tuple[str, ...]]] = {}
    fk_indexes: dict[str, list[Index]] = {}

    for entity in model.entities:
        table = entity.table_name
        entity_map = EntityMap(entity=entity.name, table=table)
        for attribute in entity.attributes:
            entity_map.attribute_columns[attribute.name] = attribute.column_name
        mapping.entity_maps[entity.name] = entity_map
        fk_extras[table] = []
        fk_constraints[table] = []
        fk_uniques[table] = []
        fk_indexes[table] = []

    bridge_schemas: list[TableSchema] = []
    for relationship in model.relationships:
        mapping.relationship_maps[relationship.name] = _map_relationship(
            mapping, relationship, fk_extras, fk_constraints, fk_uniques,
            fk_indexes, bridge_schemas,
        )

    for entity in model.entities:
        table = entity.table_name
        columns = [Column("oid", IntegerType(), nullable=False, auto_increment=True)]
        for attribute in entity.attributes:
            columns.append(
                Column(
                    attribute.column_name,
                    type_from_name(attribute.type_name),
                    nullable=not attribute.required,
                )
            )
        columns.extend(fk_extras[table])
        schema = TableSchema(
            name=table,
            columns=columns,
            primary_key=("oid",),
            foreign_keys=fk_constraints[table],
            unique_constraints=fk_uniques[table],
            indexes=fk_indexes[table],
        )
        mapping.schemas.append(schema)
    mapping.schemas.extend(bridge_schemas)
    return mapping


def _map_relationship(
    mapping: RelationalMapping,
    relationship: Relationship,
    fk_extras: dict,
    fk_constraints: dict,
    fk_uniques: dict,
    fk_indexes: dict,
    bridge_schemas: list,
) -> RelationshipMap:
    source_table = mapping.table_for(relationship.source)
    target_table = mapping.table_for(relationship.target)
    role = make_identifier(relationship.name)
    cardinality = relationship.cardinality

    if cardinality == Cardinality.MANY_TO_MANY:
        source_column = f"{make_identifier(relationship.source)}_oid"
        target_column = f"{make_identifier(relationship.target)}_oid"
        if source_column == target_column:  # self-relationship
            target_column = f"{target_column}_2"
        bridge_schemas.append(
            TableSchema(
                name=role,
                columns=[
                    Column(source_column, IntegerType(), nullable=False),
                    Column(target_column, IntegerType(), nullable=False),
                ],
                primary_key=(source_column, target_column),
                foreign_keys=[
                    ForeignKey((source_column,), source_table, ("oid",),
                               on_delete="cascade"),
                    ForeignKey((target_column,), target_table, ("oid",),
                               on_delete="cascade"),
                ],
                indexes=[
                    Index(f"ix_{role}_{target_column}", (target_column,)),
                ],
            )
        )
        return RelationshipMap(
            relationship=relationship.name,
            kind="bridge",
            source_entity=relationship.source,
            target_entity=relationship.target,
            bridge_table=role,
            source_column=source_column,
            target_column=target_column,
        )

    # FK realizations: pick the "many" side (or the target for 1:1).
    if cardinality == Cardinality.ONE_TO_MANY:
        fk_table, referenced = target_table, source_table
        fk_entity = relationship.target
    elif cardinality == Cardinality.MANY_TO_ONE:
        fk_table, referenced = source_table, target_table
        fk_entity = relationship.source
    else:  # ONE_TO_ONE
        fk_table, referenced = target_table, source_table
        fk_entity = relationship.target

    fk_column = f"{role}_oid"
    fk_extras[fk_table].append(Column(fk_column, IntegerType(), nullable=True))
    fk_constraints[fk_table].append(
        ForeignKey((fk_column,), referenced, ("oid",), on_delete="set_null")
    )
    fk_indexes[fk_table].append(Index(f"ix_{fk_table}_{fk_column}", (fk_column,)))
    if cardinality == Cardinality.ONE_TO_ONE:
        fk_uniques[fk_table].append((fk_column,))
    return RelationshipMap(
        relationship=relationship.name,
        kind="fk",
        source_entity=relationship.source,
        target_entity=relationship.target,
        fk_table=fk_table,
        fk_column=fk_column,
        fk_target_table=referenced,
        fk_on_many_side_of_source=(fk_entity != relationship.source),
    )
