"""XML persistence for ER models.

WebRatio projects store their models as XML documents edited through the
graphical front-end; this module is the equivalent serialization for the
reproduction (round-trippable through :mod:`repro.xmlkit`).

Document shape::

    <ermodel name="acm">
      <entity name="Volume">
        <attribute name="number" type="INTEGER" required="true"/>
        ...
      </entity>
      <relationship name="VolumeToIssue" source="Volume" target="Issue"
                    cardinality="1:N" inverse="IssueToVolume"/>
    </ermodel>
"""

from __future__ import annotations

from repro.er.model import Attribute, Cardinality, Entity, ERModel, Relationship
from repro.errors import ERModelError
from repro.xmlkit import Element, parse_xml, pretty_print


def er_model_to_xml(model: ERModel) -> str:
    root = Element("ermodel", {"name": model.name})
    for entity in model.entities:
        entity_el = root.add("entity", {"name": entity.name})
        for attribute in entity.attributes:
            entity_el.add(
                "attribute",
                {
                    "name": attribute.name,
                    "type": attribute.type_name,
                    "required": "true" if attribute.required else "false",
                },
            )
    for relationship in model.relationships:
        attrs = {
            "name": relationship.name,
            "source": relationship.source,
            "target": relationship.target,
            "cardinality": relationship.cardinality.value,
        }
        if relationship.inverse_name:
            attrs["inverse"] = relationship.inverse_name
        root.add("relationship", attrs)
    return pretty_print(root)


def er_model_from_xml(document: str) -> ERModel:
    root = parse_xml(document)
    if root.tag != "ermodel":
        raise ERModelError(f"expected <ermodel> document, got <{root.tag}>")
    model = ERModel(name=root.get("name", "schema"))
    for entity_el in root.find_all("entity"):
        attributes = [
            Attribute(
                name=attr_el.require_attr("name"),
                type_name=attr_el.get("type", "VARCHAR(255)"),
                required=attr_el.get("required", "false") == "true",
            )
            for attr_el in entity_el.find_all("attribute")
        ]
        model.add_entity(Entity(entity_el.require_attr("name"), attributes))
    for rel_el in root.find_all("relationship"):
        model.add_relationship(
            Relationship(
                name=rel_el.require_attr("name"),
                source=rel_el.require_attr("source"),
                target=rel_el.require_attr("target"),
                cardinality=Cardinality.parse(rel_el.get("cardinality", "1:N")),
                inverse_name=rel_el.get("inverse"),
            )
        )
    model.validate()
    return model
