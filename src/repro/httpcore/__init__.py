"""The transport-agnostic HTTP edge core (sans-IO).

The paper's tier argument ("Complete Separation of the 3 Tiers") ends
at the wire: connection handling must be separable from computation so
the edge can scale independently of page production.  This package is
that boundary for the reproduction — everything HTTP/1.x about serving
a request that does *not* require a socket, a thread, or an event loop:

- :mod:`repro.httpcore.parsing` — an incremental request parser:
  feed bytes, get :class:`~repro.mvc.http.HttpRequest` objects
  (pipelining-aware, with header/body limits);
- :mod:`repro.httpcore.wire` — response encoding: status lines,
  deterministic header order, content length vs chunked framing;
- :mod:`repro.httpcore.delivery` — the delivery *policy* shared with
  the front controller: conditional-GET/ETag evaluation, gzip
  negotiation, Cache-Control derivation, page-cache entry responses,
  and the :class:`StreamedPage` contract for chunked rendering;
- :mod:`repro.httpcore.connection` — the per-connection keep-alive
  state machine (HTTP/1.0 vs 1.1 persistence, ``Connection: close``,
  session cookies), pure functions of requests and responses;
- :mod:`repro.httpcore.client` — a small blocking wire client used by
  tests and benchmarks to drive the real servers over real sockets.

Both request front ends — the thread-per-connection
:class:`~repro.appserver.ThreadedAppServer` socket mode and the
event-loop :class:`~repro.appserver.AsyncAppServer` — are thin I/O
shells around these functions, which is what makes their responses
byte-identical by construction (the E19 oracle).
"""

from repro.httpcore.connection import HttpConnection
from repro.httpcore.delivery import (
    GZIP_MIN_BYTES,
    StreamedPage,
    accepts_gzip,
    entry_response,
    etag_matches,
    finalize_delivery,
)
from repro.httpcore.parsing import ProtocolError, RequestParser
from repro.httpcore.wire import (
    encode_chunk,
    encode_response,
    encode_simple,
    http_date,
    LAST_CHUNK,
)

__all__ = [
    "GZIP_MIN_BYTES",
    "HttpConnection",
    "LAST_CHUNK",
    "ProtocolError",
    "RequestParser",
    "StreamedPage",
    "accepts_gzip",
    "encode_chunk",
    "encode_response",
    "encode_simple",
    "entry_response",
    "etag_matches",
    "finalize_delivery",
    "http_date",
]
