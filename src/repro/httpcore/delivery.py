"""Delivery policy: conditional GET, compression, cache directives.

The *decisions* of the delivery tier — does this ``If-None-Match``
revalidate, does this client get gzip, what ``Cache-Control`` does the
cache policy imply — expressed as pure functions over request and
response objects.  The front controller applies them to freshly
rendered responses; the edges apply them when serving page-cache
entries inline; neither owns a private copy, so a 304 decided on the
event loop and a 304 decided in a worker thread are the same bytes.

Invariants carried over from the delivery pipeline (DESIGN.md §9):

- every 200 HTML GET leaves with a strong ``ETag`` over the *identity*
  body (page-cache entries precompute it at store time,
  :func:`finalize_delivery` digests everything else);
- gzip is negotiated only for bodies worth compressing
  (:data:`GZIP_MIN_BYTES`) and always rides with ``Vary:
  Accept-Encoding``;
- page-cache entries reuse their deterministic precomputed gzip body,
  so a hit costs no compression and repeated builds of identical
  content produce identical wire bytes.

:class:`StreamedPage` is the contract between the front controller's
streaming path and the async edge: response head now, body chunks as
the compiled template produces them.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from typing import Iterator

from repro.caching.page_cache import content_etag
from repro.mvc.http import HttpRequest, HttpResponse

#: bodies below this size are not worth a gzip round-trip
GZIP_MIN_BYTES = 200


def etag_matches(if_none_match: str | None, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation against one strong ETag."""
    if not if_none_match:
        return False
    if if_none_match.strip() == "*":
        return True
    candidates = [c.strip() for c in if_none_match.split(",")]
    return etag in candidates


def accepts_gzip(request: HttpRequest) -> bool:
    return "gzip" in request.headers.get("Accept-Encoding", "")


def cache_control_for(authenticated: bool,
                      ttl_seconds: float | None) -> str:
    """Derived from the cache policy: a TTL becomes ``max-age``,
    model-driven entries must revalidate (the ETag makes that a 304)."""
    scope = "private" if authenticated else "public"
    if ttl_seconds:
        return f"{scope}, max-age={int(ttl_seconds)}"
    return f"{scope}, no-cache"


def entry_response(entry, request: HttpRequest,
                   cache_control: str) -> HttpResponse:
    """The response for one page-cache entry: a 304 when the client's
    validator still matches, otherwise the stored 200 with its
    precomputed encoding.  Cheap enough to run inline on an event
    loop — no rendering, no compression, no digesting."""
    if etag_matches(request.headers.get("If-None-Match"), entry.etag):
        return HttpResponse.not_modified(
            entry.etag, {"Cache-Control": cache_control}
        )
    response = HttpResponse(
        status=200, body=entry.body,
        headers={"ETag": entry.etag, "Cache-Control": cache_control},
    )
    if accepts_gzip(request) and len(entry.body) >= GZIP_MIN_BYTES:
        response.encoded_body = entry.gzip_body
        response.headers["Content-Encoding"] = "gzip"
        response.headers["Vary"] = "Accept-Encoding"
    return response


def finalize_delivery(request: HttpRequest,
                      response: HttpResponse) -> HttpResponse:
    """Conditional and compressed delivery for every 200 HTML GET.

    Page-cache responses arrive with their validator and encoding
    already attached (precomputed at store time); everything else is
    digested and negotiated here.
    """
    if (request.method != "GET" or response.status != 200
            or response.content_type != "text/html"):
        return response
    etag = response.headers.get("ETag")
    if etag is None:
        etag = content_etag(response.body)
        response.headers["ETag"] = etag
    response.headers.setdefault("Cache-Control", "no-cache")
    if etag_matches(request.headers.get("If-None-Match"), etag):
        return HttpResponse.not_modified(
            etag, {"Cache-Control": response.headers["Cache-Control"]}
        )
    if ("Content-Encoding" not in response.headers
            and accepts_gzip(request)
            and len(response.body) >= GZIP_MIN_BYTES):
        response.encoded_body = gzip.compress(response.body.encode(), mtime=0)
        response.headers["Content-Encoding"] = "gzip"
        response.headers["Vary"] = "Accept-Encoding"
    return response


@dataclass
class StreamedPage:
    """A page being delivered incrementally.

    ``response`` carries the status and headers to send immediately
    (no ``ETag`` — a validator needs the full body, which does not
    exist yet); ``chunks`` yields body fragments in order — leading
    static markup first, each dynamic slot as it renders.  The
    consumer must either exhaust the iterator or ``close()`` it:
    closing releases the page-cache single-flight slot the stream
    holds, which is what keeps a mid-stream client disconnect from
    wedging every later request for the same page.
    """

    response: HttpResponse
    chunks: Iterator[str]
