"""The per-connection HTTP/1.x state machine (sans-IO).

One :class:`HttpConnection` per accepted socket, owned by whichever
edge accepted it.  It composes the incremental parser with the
response encoder and holds the only *stateful* protocol decisions a
connection needs:

- **persistence** — HTTP/1.1 defaults to keep-alive, HTTP/1.0 to
  close; a ``Connection: close`` (either version) or ``Connection:
  keep-alive`` (1.0) header overrides.  The decision is made per
  request and latched: once a response goes out close-marked,
  :attr:`should_close` stays true and further input is ignored.  This
  is the single place keep-alive semantics live — the threaded and
  async edges both just ask (the seed's threaded server had no wire
  tier at all, so these semantics now exist exactly once);
- **session continuity** — when the application assigned a session id
  the request did not present (no ``repro_session`` cookie, or a
  stale one), the response gains the ``Set-Cookie`` that makes the
  next request on any connection stick to it.

No sockets, no clocks, no threads: every method is a pure
bytes-in/bytes-out step, which is what lets a unit test drive the
whole protocol surface without opening a port.
"""

from __future__ import annotations

from repro.mvc.http import HttpRequest, HttpResponse
from repro.httpcore.parsing import (
    RequestParser,
    SESSION_COOKIE,
    session_id_from_headers,
)
from repro.httpcore.wire import encode_response


class HttpConnection:
    """Protocol state for one client connection."""

    def __init__(self, parser: RequestParser | None = None):
        self.parser = parser or RequestParser()
        self.requests_handled = 0
        self._close_pending = False

    # -- inbound -------------------------------------------------------------

    def receive_bytes(self, data: bytes) -> list[HttpRequest]:
        """Parse whatever arrived; returns every completed request.

        After a close-marked response, leftover pipelined input is
        discarded — the peer was told the connection is ending.
        """
        if self._close_pending:
            return []
        return self.parser.feed(data)

    # -- persistence ---------------------------------------------------------

    @staticmethod
    def keep_alive_after(request: HttpRequest) -> bool:
        """Whether the connection may persist past ``request``."""
        connection = request.headers.get("Connection", "").lower()
        if "close" in connection:
            return False
        if getattr(request, "http_version", "HTTP/1.1") == "HTTP/1.0":
            return "keep-alive" in connection
        return True

    @property
    def should_close(self) -> bool:
        """True once a sent response ended the connection's lifetime."""
        return self._close_pending

    def mark_close(self) -> None:
        """Force the connection to end (stream abort, server shutdown)."""
        self._close_pending = True

    # -- outbound ------------------------------------------------------------

    def send_response(self, request: HttpRequest, response: HttpResponse,
                      date: str | None = None,
                      chunked: bool = False) -> bytes:
        """Encode ``response`` as the answer to ``request``.

        Applies the persistence decision (latching close), attaches the
        session cookie when the application minted a new session, and
        returns the wire bytes — the head only when ``chunked`` (the
        caller frames the body with :func:`~repro.httpcore.wire.encode_chunk`).
        """
        keep_alive = self.keep_alive_after(request)
        if not keep_alive:
            self._close_pending = True
        self._apply_session_cookie(request, response)
        self.requests_handled += 1
        return encode_response(
            response, keep_alive=keep_alive, date=date, chunked=chunked
        )

    @staticmethod
    def _apply_session_cookie(request: HttpRequest,
                              response: HttpResponse) -> None:
        presented = session_id_from_headers(request.headers)
        assigned = request.session_id
        if assigned and assigned != presented:
            response.headers["Set-Cookie"] = (
                f"{SESSION_COOKIE}={assigned}; Path=/"
            )
