"""Incremental HTTP/1.x request parsing (sans-IO).

A :class:`RequestParser` owns a byte buffer: the transport feeds it
whatever ``recv`` produced — a request per call, half a header, three
pipelined requests — and gets back every *complete* request as a
:class:`~repro.mvc.http.HttpRequest`, ready for the application tier.
The parser never blocks and never touches a socket, so the same
instance serves the threaded edge (fed from blocking ``recv``) and the
async edge (fed from the event loop) identically.

Protocol scope — exactly what the reproduction's tiers need:

- request line + headers + optional ``Content-Length`` body;
- query parameters through :meth:`HttpRequest.from_url` (repeated
  names become lists, the servlet-API behaviour the services expect);
- ``application/x-www-form-urlencoded`` bodies merge into ``params``
  the same way;
- the ``repro_session`` cookie becomes ``request.session_id`` — the
  wire form of the session id the in-process model passes directly;
- hard limits on header and body size (a malformed or hostile peer
  costs a bounded buffer, then a :class:`ProtocolError` → 400).

Anything outside that scope (transfer-encoded request bodies, line
folding, HTTP/2) raises :class:`ProtocolError` rather than guessing.
"""

from __future__ import annotations

from urllib.parse import parse_qsl

from repro.errors import ReproError
from repro.mvc.http import HttpRequest

#: name of the cookie carrying the session id over the wire
SESSION_COOKIE = "repro_session"

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"
_SUPPORTED_VERSIONS = ("HTTP/1.0", "HTTP/1.1")


class ProtocolError(ReproError):
    """The peer sent bytes that are not a well-formed HTTP/1.x request
    (or exceeded the parser's limits).  The edge answers 400 and closes."""


def canonical_header(name: str) -> str:
    """Normalize a wire header name to the Title-Case form the
    in-process tiers look up (``if-none-match`` → ``If-None-Match``)."""
    return "-".join(part.capitalize() for part in name.split("-"))


def session_id_from_headers(headers: dict) -> str | None:
    """The session id carried by the request's cookies, if any."""
    cookie_header = headers.get("Cookie", "")
    for part in cookie_header.split(";"):
        name, _sep, value = part.strip().partition("=")
        if name == SESSION_COOKIE and value:
            return value
    return None


class RequestParser:
    """Feed bytes in, take complete :class:`HttpRequest` objects out."""

    def __init__(self, max_header_bytes: int = 32768,
                 max_body_bytes: int = 1 << 20):
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._buffer = bytearray()
        self.requests_parsed = 0

    def feed(self, data: bytes) -> list[HttpRequest]:
        """Consume ``data`` and return every request it completes.

        Pipelined requests all come out of one call; a partial request
        stays buffered for the next.  Raises :class:`ProtocolError` on
        malformed input — the buffer is then poisoned and the
        connection must close (HTTP/1.x framing cannot resynchronize).
        """
        self._buffer.extend(data)
        requests: list[HttpRequest] = []
        while True:
            request = self._try_parse_one()
            if request is None:
                break
            requests.append(request)
        return requests

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def _try_parse_one(self) -> HttpRequest | None:
        head_end = self._buffer.find(_HEADER_END)
        if head_end < 0:
            if len(self._buffer) > self.max_header_bytes:
                raise ProtocolError(
                    f"request head exceeds {self.max_header_bytes} bytes"
                )
            return None
        head = bytes(self._buffer[:head_end])
        body_start = head_end + len(_HEADER_END)
        method, target, version, headers = self._parse_head(head)
        body_length = self._body_length(headers)
        if len(self._buffer) - body_start < body_length:
            return None  # body still in flight
        body = bytes(self._buffer[body_start:body_start + body_length])
        del self._buffer[:body_start + body_length]
        self.requests_parsed += 1
        return self._build_request(method, target, version, headers, body)

    def _parse_head(self, head: bytes) -> tuple[str, str, str, dict]:
        try:
            text = head.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise ProtocolError(f"undecodable request head: {exc}") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if version not in _SUPPORTED_VERSIONS:
            raise ProtocolError(f"unsupported protocol version {version!r}")
        if not target.startswith("/"):
            raise ProtocolError(f"unsupported request target {target!r}")
        headers: dict = {}
        for line in lines[1:]:
            if not line:
                continue
            if line[0] in " \t":
                raise ProtocolError("obsolete header line folding")
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                raise ProtocolError(f"malformed header line: {line!r}")
            headers[canonical_header(name.strip())] = value.strip()
        return method, target, version, headers

    def _body_length(self, headers: dict) -> int:
        declared = headers.get("Content-Length")
        if declared is None:
            if "Transfer-Encoding" in headers:
                raise ProtocolError("transfer-encoded request bodies are "
                                    "not supported")
            return 0
        try:
            length = int(declared)
        except ValueError as exc:
            raise ProtocolError(
                f"bad Content-Length {declared!r}"
            ) from exc
        if length < 0:
            raise ProtocolError(f"negative Content-Length {length}")
        if length > self.max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds "
                f"{self.max_body_bytes}"
            )
        return length

    def _build_request(self, method: str, target: str, version: str,
                       headers: dict, body: bytes) -> HttpRequest:
        request = HttpRequest.from_url(
            target, method=method, headers=headers,
            session_id=session_id_from_headers(headers),
        )
        request.http_version = version
        content_type = headers.get("Content-Type", "")
        if body and content_type.startswith(
                "application/x-www-form-urlencoded"):
            for name, value in parse_qsl(body.decode("latin-1"),
                                         keep_blank_values=True):
                existing = request.params.get(name)
                if existing is None:
                    request.params[name] = value
                elif isinstance(existing, list):
                    existing.append(value)
                else:
                    request.params[name] = [existing, value]
        return request
