"""Response encoding: HttpResponse objects → HTTP/1.1 bytes (sans-IO).

One function, :func:`encode_response`, turns the in-process
:class:`~repro.mvc.http.HttpResponse` into its wire form.  Both edges
call it through the shared connection state machine, which is what
makes threaded and async responses byte-identical by construction:
same header order, same framing decisions, same body bytes.

Framing rules (deliberately deterministic):

- header order is fixed — status line, ``Date``, application headers
  in insertion order, ``Content-Type``, framing
  (``Content-Length``/``Transfer-Encoding``), ``Connection``;
- a 304 carries no body and no body-description headers (RFC 9110:
  the validator headers it *does* carry arrive as application
  headers);
- ``encoded_body`` (negotiated gzip) is the wire body when present,
  the identity ``body`` otherwise;
- chunked framing is only chosen by the caller (the streaming path);
  everything else is ``Content-Length``.
"""

from __future__ import annotations

from email.utils import formatdate

#: reason phrases for every status the runtime produces
REASON_PHRASES = {
    200: "OK",
    301: "Moved Permanently",
    302: "Found",
    303: "See Other",
    304: "Not Modified",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: the terminating frame of a chunked body
LAST_CHUNK = b"0\r\n\r\n"

#: statuses that must not carry a message body
_BODYLESS = frozenset({204, 304})


def http_date(timestamp: float | None = None) -> str:
    """An RFC 9110 ``Date`` header value (IMF-fixdate, GMT)."""
    return formatdate(timestamp, usegmt=True)


def reason_phrase(status: int) -> str:
    return REASON_PHRASES.get(status, "Unknown")


def encode_chunk(data: bytes) -> bytes:
    """One frame of a chunked body.  Never call with empty data — a
    zero-length chunk is the terminator (:data:`LAST_CHUNK`)."""
    return b"%x\r\n%s\r\n" % (len(data), data)


def encode_response(response, *, keep_alive: bool = True,
                    date: str | None = None,
                    chunked: bool = False) -> bytes:
    """The full wire form of ``response`` (head + body).

    With ``chunked=True`` only the head is returned (terminated by the
    blank line); the caller frames body chunks with
    :func:`encode_chunk` and finishes with :data:`LAST_CHUNK`.
    """
    status = response.status
    lines = [f"HTTP/1.1 {status} {reason_phrase(status)}"]
    if date is not None:
        lines.append(f"Date: {date}")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    bodyless = status in _BODYLESS
    body = b""
    if not bodyless:
        lines.append(f"Content-Type: {response.content_type}")
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        else:
            body = (response.encoded_body if response.encoded_body is not None
                    else response.body.encode())
            lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    if chunked or bodyless:
        return head
    return head + body


def encode_simple(status: int, body: str,
                  date: str | None = None) -> bytes:
    """A standalone close-marked plain-text response, for failures that
    happen *below* the application (parse errors, overload): the edge
    sends these directly and drops the connection."""
    payload = body.encode()
    lines = [f"HTTP/1.1 {status} {reason_phrase(status)}"]
    if date is not None:
        lines.append(f"Date: {date}")
    lines.extend([
        "Content-Type: text/plain",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ])
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload
