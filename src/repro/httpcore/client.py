"""A small blocking HTTP/1.1 client for driving the real edges.

Tests, benchmarks, and examples need to exercise the servers over real
sockets — keep-alive reuse, pipelining, chunked bodies, slow-client
behaviour — without pulling in an external HTTP library.  This client
is deliberately minimal and observable:

- one :class:`WireClient` per connection; ``request()`` reuses it
  until the server closes (mirroring a browser's keep-alive);
- every exchange's raw bytes are kept (``last_raw``) so the E19
  byte-identity oracle can compare full wire responses, not parsed
  projections;
- an optional cookie jar carries the ``repro_session`` cookie, making
  logged-in flows work over the wire exactly like the in-process
  :class:`~repro.app.Browser`;
- ``trickle_read`` reads a response a few bytes at a time with sleeps
  — the pathological slow client E19 uses to show the async edge does
  not let one bad reader stall the loop.
"""

from __future__ import annotations

import socket
import time

from repro.errors import ReproError
from repro.httpcore.parsing import SESSION_COOKIE

_HEADER_END = b"\r\n\r\n"


class WireError(ReproError):
    """The server closed or violated framing mid-response."""


class WireResponse:
    """One parsed response plus its raw bytes."""

    def __init__(self, status: int, reason: str, headers: dict,
                 body: bytes, raw: bytes):
        self.status = status
        self.reason = reason
        self.headers = headers
        self.body = body
        self.raw = raw

    @property
    def text(self) -> str:
        return self.body.decode()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireResponse {self.status} {len(self.body)}B>"


def _bodyless(status: int) -> bool:
    return status in (204, 304) or 100 <= status < 200


class WireClient:
    """A blocking keep-alive connection to one server address."""

    def __init__(self, address: tuple, timeout: float = 10.0,
                 cookies: bool = False):
        self.address = address
        self.timeout = timeout
        self.cookies = cookies
        self.session_id: str | None = None
        self.last_raw: bytes = b""
        self._sock: socket.socket | None = None
        self._buffer = bytearray()

    # -- connection lifecycle ------------------------------------------------

    def connect(self) -> "WireClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                self.address, timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._buffer.clear()

    def __enter__(self) -> "WireClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- requests ------------------------------------------------------------

    def build_request(self, target: str, method: str = "GET",
                      headers: dict | None = None,
                      http_version: str = "HTTP/1.1") -> bytes:
        merged = dict(headers or {})
        merged.setdefault("Host", f"{self.address[0]}:{self.address[1]}")
        if self.cookies and self.session_id and "Cookie" not in merged:
            merged["Cookie"] = f"{SESSION_COOKIE}={self.session_id}"
        lines = [f"{method} {target} {http_version}"]
        lines.extend(f"{name}: {value}" for name, value in merged.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    def send_raw(self, data: bytes) -> None:
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)

    def request(self, target: str, method: str = "GET",
                headers: dict | None = None,
                http_version: str = "HTTP/1.1") -> WireResponse:
        """One full request/response exchange on this connection."""
        self.send_raw(self.build_request(target, method, headers,
                                         http_version))
        response = self.read_response()
        if self.cookies:
            self._absorb_cookie(response)
        return response

    def _absorb_cookie(self, response: WireResponse) -> None:
        set_cookie = response.headers.get("Set-Cookie", "")
        name, _sep, value = set_cookie.split(";")[0].partition("=")
        if name == SESSION_COOKIE and value:
            self.session_id = value

    # -- response reading ----------------------------------------------------

    def read_response(self) -> WireResponse:
        """Read exactly one response (Content-Length or chunked)."""
        raw = bytearray()
        head = self._read_until(_HEADER_END, raw)
        status, reason, headers = self._parse_head(head)
        if _bodyless(status):
            body = b""
        elif headers.get("Transfer-Encoding", "").lower() == "chunked":
            body = self._read_chunked(raw)
        else:
            length = int(headers.get("Content-Length", "0"))
            body = self._read_exact(length, raw)
        self.last_raw = bytes(raw)
        return WireResponse(status, reason, headers, body, self.last_raw)

    def _parse_head(self, head: bytes) -> tuple[int, str, dict]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise WireError(f"malformed status line {lines[0]!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip()] = value.strip()
        return status, reason, headers

    def _read_until(self, marker: bytes, raw: bytearray) -> bytes:
        while True:
            index = self._buffer.find(marker)
            if index >= 0:
                end = index + len(marker)
                head = bytes(self._buffer[:end])
                del self._buffer[:end]
                raw.extend(head)
                return head[:-len(marker)]
            self._fill()

    def _read_exact(self, count: int, raw: bytearray) -> bytes:
        while len(self._buffer) < count:
            self._fill()
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        raw.extend(data)
        return data

    def _read_chunked(self, raw: bytearray) -> bytes:
        body = bytearray()
        while True:
            size_line = self._read_until(b"\r\n", raw)
            size = int(size_line.split(b";")[0], 16)
            data = self._read_exact(size + 2, raw)  # chunk + CRLF
            if size == 0:
                return bytes(body)
            body.extend(data[:-2])

    def _fill(self) -> None:
        assert self._sock is not None, "client is not connected"
        data = self._sock.recv(65536)
        if not data:
            raise WireError("server closed the connection mid-response")
        self._buffer.extend(data)

    # -- pathological clients ------------------------------------------------

    def trickle_read(self, total_timeout: float = 30.0,
                     chunk_size: int = 16,
                     delay: float = 0.02) -> bytes:
        """Read whatever the server sends a few bytes at a time, with a
        sleep between reads — a slow mobile client.  Returns everything
        read once the socket would block past its timeout or closes."""
        assert self._sock is not None, "client is not connected"
        received = bytearray(self._buffer)
        self._buffer.clear()
        deadline = time.monotonic() + total_timeout
        self._sock.settimeout(delay * 5 + 0.2)
        try:
            while time.monotonic() < deadline:
                try:
                    data = self._sock.recv(chunk_size)
                except socket.timeout:
                    break
                if not data:
                    break
                received.extend(data)
                time.sleep(delay)
        finally:
            self._sock.settimeout(self.timeout)
        return bytes(received)
