"""Reference applications and workload generators.

- :mod:`repro.workloads.acm` — the paper's Figures 1-2: the ACM Digital
  Library volume page and the flows around it,
- :mod:`repro.workloads.bookstore` — a small commerce-style application
  used by the quickstart example,
- :mod:`repro.workloads.acer` — the §8 Acer-Euro case at its published
  scale: 22 site views, 556 pages, 3068 units, >3000 SQL queries,
- :mod:`repro.workloads.traffic` — a session-based request generator
  with zipfian page popularity for the serving experiments.
"""

from repro.workloads.acer import AcerScale, build_acer_model, acer_statistics
from repro.workloads.acm import build_acm_application, build_acm_model, seed_acm_data
from repro.workloads.bookstore import build_bookstore_application, build_bookstore_model
from repro.workloads.traffic import TrafficGenerator, TrafficReport

__all__ = [
    "build_acm_model",
    "build_acm_application",
    "seed_acm_data",
    "build_bookstore_model",
    "build_bookstore_application",
    "AcerScale",
    "build_acer_model",
    "acer_statistics",
    "TrafficGenerator",
    "TrafficReport",
]
