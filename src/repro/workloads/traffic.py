"""Session-based traffic generation for the serving experiments.

Drives a :class:`~repro.app.Browser` through an application with
zipf-distributed page popularity — the skew that makes caches pay off —
and reports what happened.  Determinism comes from the explicit seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass
class TrafficReport:
    requests: int = 0
    ok_responses: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    queries_executed: int = 0
    status_counts: dict = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds


class TrafficGenerator:
    """Replays synthetic user sessions against an application.

    ``url_pool`` is the set of concrete URLs users visit; popularity is
    zipfian over the pool's order (first = most popular).
    """

    def __init__(self, app, url_pool: list[str], seed: int = 2003,
                 zipf_skew: float = 1.0, user_agent: str = "Mozilla/5.0"):
        if not url_pool:
            raise ValueError("traffic needs at least one URL")
        self.app = app
        self.url_pool = list(url_pool)
        self.random = random.Random(seed)
        self.user_agent = user_agent
        weights = [1.0 / (rank + 1) ** zipf_skew
                   for rank in range(len(self.url_pool))]
        total = sum(weights)
        self.weights = [w / total for w in weights]

    def pick_url(self) -> str:
        return self.random.choices(self.url_pool, weights=self.weights, k=1)[0]

    def run(self, requests: int, sessions: int = 4) -> TrafficReport:
        """Issue ``requests`` GETs spread over ``sessions`` browsers."""
        from repro.app import Browser

        browsers = [
            Browser(self.app, user_agent=self.user_agent)
            for _ in range(max(1, sessions))
        ]
        report = TrafficReport()
        queries_before = self.app.ctx.stats.queries_executed
        started = time.perf_counter()
        for position in range(requests):
            browser = browsers[position % len(browsers)]
            response = browser.get(self.pick_url())
            report.requests += 1
            report.status_counts[response.status] = (
                report.status_counts.get(response.status, 0) + 1
            )
            if response.status == 200:
                report.ok_responses += 1
            else:
                report.errors += 1
        report.elapsed_seconds = time.perf_counter() - started
        report.queries_executed = (
            self.app.ctx.stats.queries_executed - queries_before
        )
        return report


def page_url_pool(app, site_view_name: str,
                  detail_params: dict | None = None) -> list[str]:
    """Concrete URLs for every page of a site view.

    ``detail_params`` maps page names to parameter dicts for pages that
    need an object selection to show content.
    """
    view = app.model.find_site_view(site_view_name)
    pool = []
    for page in view.all_pages():
        params = (detail_params or {}).get(page.name)
        pool.append(app.page_url(site_view_name, page.name, params))
    return pool
