"""Session-based traffic generation for the serving experiments.

Drives :class:`~repro.app.Browser` sessions through an application
with zipf-distributed page popularity — the skew that makes caches pay
off — and reports what happened.  Determinism comes from the explicit
seed.

Beyond the read-only replay the early experiments used, the generator
drives the **mixed read/write traffic** of E15: every ``write_every``
requests a write operation runs (through its own authenticated
browser), immediately followed by a *read-after-write check* — a
public read of a page whose content the write must have changed.  A
check that does not observe the write is a staleness violation, the
hard failure mode a model-driven cache hierarchy must never exhibit.

Delivery metrics: per-request latency percentiles, bytes on the wire
(gzip and 304s shrink them), the 304 revalidation ratio, and the
page-cache invalidation precision (the fraction of cached pages that
survive each write).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass
class WriteAction:
    """One write of the mixed workload, plus its visibility probe.

    ``url`` is the operation URL to GET (with the writer's session);
    after it completes, a read of ``check_url`` must contain
    ``check_text`` — the read-after-write consistency probe.
    """

    url: str
    check_url: str | None = None
    check_text: str | None = None


@dataclass
class TrafficReport:
    requests: int = 0
    ok_responses: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    queries_executed: int = 0
    status_counts: dict = field(default_factory=dict)
    latencies: list = field(default_factory=list)
    bytes_on_wire: int = 0
    writes: int = 0
    staleness_violations: int = 0
    #: per write: (cached pages before, surviving after invalidation)
    invalidation_samples: list = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    @property
    def not_modified(self) -> int:
        return self.status_counts.get(304, 0)

    @property
    def not_modified_ratio(self) -> float:
        if not self.requests:
            return 0.0
        return self.not_modified / self.requests

    @property
    def queries_per_request(self) -> float:
        if not self.requests:
            return 0.0
        return self.queries_executed / self.requests

    @property
    def invalidation_precision(self) -> float:
        """Mean fraction of cached pages surviving each write — 1.0
        means writes never touch unrelated pages, 0.0 means every
        write wipes the cache (the flush-all baseline)."""
        fractions = [
            surviving / before
            for before, surviving in self.invalidation_samples
            if before > 0
        ]
        if not fractions:
            return 0.0
        return sum(fractions) / len(fractions)

    def percentile_ms(self, fraction: float) -> float:
        """Latency percentile in milliseconds over all read requests."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index] * 1000.0

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)


class TrafficGenerator:
    """Replays synthetic user sessions against an application.

    ``url_pool`` is the set of concrete URLs users visit; popularity is
    zipfian over the pool's order (first = most popular).
    """

    def __init__(self, app, url_pool: list[str], seed: int = 2003,
                 zipf_skew: float = 1.0, user_agent: str = "Mozilla/5.0"):
        if not url_pool:
            raise ValueError("traffic needs at least one URL")
        self.app = app
        self.url_pool = list(url_pool)
        self.random = random.Random(seed)
        self.user_agent = user_agent
        weights = [1.0 / (rank + 1) ** zipf_skew
                   for rank in range(len(self.url_pool))]
        total = sum(weights)
        self.weights = [w / total for w in weights]

    def pick_url(self) -> str:
        return self.random.choices(self.url_pool, weights=self.weights, k=1)[0]

    def run(self, requests: int, sessions: int = 4,
            conditional: bool = False,
            write_every: int = 0, write_factory=None, writer=None,
            page_cache=None) -> TrafficReport:
        """Issue ``requests`` GETs spread over ``sessions`` browsers.

        With ``write_every > 0``, every that-many reads one write from
        ``write_factory(index)`` (a :class:`WriteAction`) runs through
        the ``writer`` browser, and the action's check read — issued
        through a *reading* session — must observe the write.  Pass
        ``page_cache`` to sample invalidation precision around each
        write.  Only reads contribute to latency/bytes/status metrics.
        """
        from repro.app import Browser

        browsers = [
            Browser(self.app, user_agent=self.user_agent,
                    conditional=conditional)
            for _ in range(max(1, sessions))
        ]
        report = TrafficReport()
        queries_before = self.app.ctx.stats.queries_executed
        started = time.perf_counter()
        for position in range(requests):
            browser = browsers[position % len(browsers)]
            request_started = time.perf_counter()
            response = browser.get(self.pick_url())
            report.latencies.append(time.perf_counter() - request_started)
            report.requests += 1
            report.status_counts[response.status] = (
                report.status_counts.get(response.status, 0) + 1
            )
            report.bytes_on_wire += response.wire_length
            if response.status in (200, 304):
                report.ok_responses += 1
            else:
                report.errors += 1
            if write_every and (position + 1) % write_every == 0:
                self._write(report, write_factory, writer or browsers[0],
                            browsers[(position + 1) % len(browsers)],
                            page_cache)
        report.elapsed_seconds = time.perf_counter() - started
        report.queries_executed = (
            self.app.ctx.stats.queries_executed - queries_before
        )
        return report

    def _write(self, report: TrafficReport, write_factory, writer,
               reader, page_cache) -> None:
        if write_factory is None:
            raise ValueError("write_every needs a write_factory")
        action: WriteAction = write_factory(report.writes)
        before = len(page_cache) if page_cache is not None else 0
        # The operation commits before its OK-link redirect is issued;
        # not following it keeps the invalidation sample clean.
        writer.get(action.url, follow_redirects=False)
        surviving = len(page_cache) if page_cache is not None else 0
        if page_cache is not None:
            report.invalidation_samples.append((before, surviving))
        report.writes += 1
        if action.check_url is not None:
            check = reader.get(action.check_url)
            if action.check_text is not None and \
                    action.check_text not in check.body:
                report.staleness_violations += 1


def page_url_pool(app, site_view_name: str,
                  detail_params: dict | None = None) -> list[str]:
    """Concrete URLs for every page of a site view.

    ``detail_params`` maps page names to parameter dicts for pages that
    need an object selection to show content.
    """
    view = app.model.find_site_view(site_view_name)
    pool = []
    for page in view.all_pages():
        params = (detail_params or {}).get(page.name)
        pool.append(app.page_url(site_view_name, page.name, params))
    return pool
