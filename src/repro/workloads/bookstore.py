"""A small bookstore application — the quickstart workload.

Covers the everyday WebML vocabulary on a familiar domain: browse by
genre, book details with authors, keyword search, block-scrolling the
catalogue, and a protected back office managing the catalogue through
create/modify/delete/connect operations.
"""

from __future__ import annotations

from repro.app import WebApplication
from repro.er import ERModel
from repro.webml import (
    AttributeCondition,
    LinkKind,
    Selector,
    WebMLModel,
)


def build_bookstore_data_model() -> ERModel:
    model = ERModel(name="bookstore")
    model.entity("Book", [("title", "VARCHAR(160)", True),
                          ("price", "FLOAT"), ("year", "INTEGER"),
                          ("blurb", "TEXT")])
    model.entity("Writer", [("name", "VARCHAR(80)", True)])
    model.entity("Genre", [("name", "VARCHAR(60)", True)])
    model.entity("Staff", [("username", "VARCHAR(40)", True),
                           ("password", "VARCHAR(40)", True)])
    model.relate("GenreToBook", "Genre", "Book", "1:N",
                 inverse_name="BookToGenre")
    model.relate("WrittenBy", "Book", "Writer", "N:M",
                 inverse_name="Wrote")
    return model


def build_bookstore_model() -> WebMLModel:
    model = WebMLModel(build_bookstore_data_model(), name="bookstore")
    shop = model.site_view("shop")

    home = shop.page("Home", home=True, landmark=True)
    genres = home.index_unit("Genres", "Genre", display_attributes=["name"],
                             order_by=[("name", False)])
    search_form = home.entry_unit("Search", fields=[("keyword", "text", True)])

    genre_page = shop.page("Genre Page")
    genre_data = genre_page.data_unit("Genre", "Genre",
                                      display_attributes=["name"])
    genre_books = genre_page.index_unit(
        "Books in genre", "Book",
        selector=Selector.over_role("GenreToBook", "genre"),
        display_attributes=["title", "price"],
        order_by=[("title", False)],
    )

    book_page = shop.page("Book Page")
    book_data = book_page.data_unit("Book", "Book")
    book_authors = book_page.index_unit(
        "Authors", "Writer",
        selector=Selector.over_role("WrittenBy", "book"),
        display_attributes=["name"],
    )

    results_page = shop.page("Search Results")
    hits = results_page.index_unit(
        "Hits", "Book",
        selector=Selector([AttributeCondition("title", "like",
                                              parameter="keyword")]),
        display_attributes=["title", "price"],
    )

    catalogue_page = shop.page("Catalogue", landmark=True)
    catalogue_page.scroller_unit(
        "All books", "Book", block_size=3,
        display_attributes=["title", "price"],
        order_by=[("title", False)],
    )

    model.link(genres, genre_data, params=[("oid", "oid")], label="browse")
    model.link(genre_data, genre_books, kind=LinkKind.TRANSPORT,
               params=[("oid", "genre")])
    model.link(genre_books, book_data, params=[("oid", "oid")],
               label="details")
    model.link(book_data, book_authors, kind=LinkKind.TRANSPORT,
               params=[("oid", "book")])
    model.link(search_form, hits, params=[("keyword", "keyword")],
               label="search")
    model.link(hits, book_data, params=[("oid", "oid")])

    _add_back_office(model)
    return model


def _add_back_office(model: WebMLModel) -> None:
    office = model.site_view("backoffice", requires_login=True)
    desk = office.page("Desk", home=True)
    book_list = desk.index_unit("Catalogue", "Book",
                                display_attributes=["title", "price"])
    new_book = desk.entry_unit(
        "New book",
        fields=[("title", "text", True), ("price", "text"), ("year", "text")],
    )
    writer_list = desk.index_unit("Writers", "Writer",
                                  display_attributes=["name"])

    login_page = office.page("Sign in")
    credentials = login_page.entry_unit(
        "Credentials",
        fields=[("username", "text", True), ("password", "password", True)],
    )

    create_book = office.create_op("CreateBook", "Book",
                                   ["title", "price", "year"])
    drop_book = office.delete_op("DropBook", "Book")
    reprice = office.modify_op("Reprice", "Book", ["price"])
    credit = office.connect_op("CreditWriter", "WrittenBy")
    login = office.login_op("Login", user_entity="Staff")
    logout = office.logout_op("Logout")

    model.link(new_book, create_book,
               params=[("title", "title"), ("price", "price"),
                       ("year", "year")])
    model.link(create_book, desk, kind=LinkKind.OK)
    model.link(create_book, desk, kind=LinkKind.KO)
    model.link(book_list, drop_book, params=[("oid", "oid")], label="drop")
    model.link(drop_book, desk, kind=LinkKind.OK)
    model.link(drop_book, desk, kind=LinkKind.KO)
    model.link(book_list, reprice, params=[("oid", "oid")], label="reprice")
    reprice_entry = desk.entry_unit("New price", fields=[("price", "text", True)])
    model.link(reprice_entry, reprice, params=[("price", "price")])
    model.link(reprice, desk, kind=LinkKind.OK)
    model.link(reprice, desk, kind=LinkKind.KO)
    model.link(book_list, credit, params=[("oid", "source_oid")],
               label="credit")
    model.link(writer_list, credit, params=[("oid", "target_oid")])
    model.link(credit, desk, kind=LinkKind.OK)
    model.link(credit, desk, kind=LinkKind.KO)
    model.link(credentials, login,
               params=[("username", "username"), ("password", "password")])
    model.link(login, desk, kind=LinkKind.OK)
    model.link(login, login_page, kind=LinkKind.KO)
    model.link(desk, logout)
    model.link(logout, login_page, kind=LinkKind.OK)


def seed_bookstore(app: WebApplication) -> dict:
    genres = app.seed_entity("Genre", [
        {"name": "Databases"}, {"name": "Web Engineering"},
        {"name": "Software Design"},
    ])
    books = app.seed_entity("Book", [
        {"title": "Building Data-Intensive Web Applications", "price": 55.0,
         "year": 2002, "GenreToBook": genres[1]},
        {"title": "Design Patterns", "price": 49.5, "year": 1995,
         "GenreToBook": genres[2]},
        {"title": "Principles of Database Systems", "price": 60.0,
         "year": 1998, "GenreToBook": genres[0]},
        {"title": "Web Caching Explained", "price": 35.0, "year": 2001,
         "GenreToBook": genres[1]},
        {"title": "Mastering Enterprise JavaBeans", "price": 45.0,
         "year": 2001, "GenreToBook": genres[2]},
    ])
    writers = app.seed_entity("Writer", [
        {"name": "S. Ceri"}, {"name": "P. Fraternali"}, {"name": "E. Gamma"},
    ])
    app.connect_instances("WrittenBy", books[0], writers[0])
    app.connect_instances("WrittenBy", books[0], writers[1])
    app.connect_instances("WrittenBy", books[1], writers[2])
    app.seed_entity("Staff", [{"username": "clerk", "password": "books"}])
    return {"genres": genres, "books": books, "writers": writers}


def build_bookstore_application(view_renderer=None,
                                bean_cache=None) -> tuple[WebApplication, dict]:
    app = WebApplication(build_bookstore_model(), view_renderer=view_renderer,
                         bean_cache=bean_cache)
    oids = seed_bookstore(app)
    app.ctx.stats.reset()
    app.database.stats.reset()
    return app, oids


def bean_content_renderer(page_result, request, controller) -> str:
    """A view that serializes bean *content* as JSON, so consistency
    probes (E13's mixed workload, E21's staleness oracle) can read the
    served values straight out of the response body."""
    import json

    payload = {
        bean.name: {"current": bean.current, "from_cache": bean.from_cache}
        for bean in page_result.beans.values()
    }
    return json.dumps(payload, default=str)


def build_bookstore_replica(database) -> WebApplication:
    """Fleet-worker factory: the bookstore stack over a replica database.

    Referenced by dotted path
    (``"repro.workloads.bookstore:build_bookstore_replica"``) from
    :class:`repro.appserver.fleet.FleetSupervisor`.  No seeding — the
    data arrived via snapshot bootstrap, and the replica engine would
    refuse the writes anyway.  Commit invalidation is on so replayed
    WAL records flush the worker's own cache levels.
    """
    app = WebApplication(build_bookstore_model(),
                         view_renderer=bean_content_renderer,
                         database=database)
    app.enable_commit_invalidation()
    return app
