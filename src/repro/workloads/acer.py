"""The Acer-Euro case at its published scale (paper §8).

"The integrated application features 22 site views, 556 page templates,
and 3068 units, for a total of over 3000 SQL queries."

The original application is proprietary; this generator rebuilds a
*structurally equivalent* application in the same domain (a corporate
product-publishing portal for a multi-country organization): B2C site
views for national customer sites, B2B site views for the distribution
channel, and internal content-management site views whose pages drive
create/modify/delete operations.  The generated model validates, hits
the published structural counts exactly, and runs end to end — the code
generators, descriptor architecture and presentation pipeline are
exercised at full Acer-Euro scale by experiments E1-E3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app import WebApplication
from repro.er import ERModel
from repro.errors import CodegenError
from repro.webml import (
    AttributeCondition,
    LinkKind,
    Selector,
    WebMLModel,
)

#: the portal's domain entities (attribute lists kept deliberately flat)
ENTITY_SPECS: list[tuple[str, list[tuple[str, str]]]] = [
    ("Product", [("name", "VARCHAR(120)"), ("code", "INTEGER"),
                 ("description", "TEXT"), ("list_price", "FLOAT")]),
    ("Category", [("name", "VARCHAR(80)"), ("code", "INTEGER"),
                  ("description", "TEXT")]),
    ("Accessory", [("name", "VARCHAR(120)"), ("code", "INTEGER"),
                   ("list_price", "FLOAT")]),
    ("Specification", [("name", "VARCHAR(80)"), ("value", "VARCHAR(200)")]),
    ("Document", [("name", "VARCHAR(120)"), ("language", "VARCHAR(20)"),
                  ("body", "TEXT")]),
    ("Download", [("name", "VARCHAR(120)"), ("version", "VARCHAR(20)"),
                  ("size_kb", "INTEGER")]),
    ("PriceList", [("name", "VARCHAR(80)"), ("currency", "VARCHAR(10)"),
                   ("valid_from", "DATE")]),
    ("Promotion", [("name", "VARCHAR(120)"), ("discount", "FLOAT"),
                   ("description", "TEXT")]),
    ("Country", [("name", "VARCHAR(60)"), ("code", "INTEGER"),
                 ("language", "VARCHAR(20)")]),
    ("Subsidiary", [("name", "VARCHAR(80)"), ("city", "VARCHAR(60)"),
                    ("staff_count", "INTEGER")]),
    ("News", [("name", "VARCHAR(160)"), ("body", "TEXT"),
              ("published", "DATE")]),
    ("Event", [("name", "VARCHAR(160)"), ("venue", "VARCHAR(80)"),
               ("scheduled", "DATE")]),
    ("Dealer", [("name", "VARCHAR(120)"), ("city", "VARCHAR(60)"),
                ("tier", "INTEGER")]),
    ("PressRelease", [("name", "VARCHAR(160)"), ("body", "TEXT"),
                      ("published", "DATE")]),
    ("SupportCase", [("name", "VARCHAR(160)"), ("status", "VARCHAR(20)"),
                     ("opened", "DATE")]),
    ("Customer", [("name", "VARCHAR(120)"), ("city", "VARCHAR(60)"),
                  ("segment", "VARCHAR(30)")]),
    ("Manager", [("name", "VARCHAR(80)"), ("role_title", "VARCHAR(60)")]),
    ("MarketingMaterial", [("name", "VARCHAR(160)"), ("kind", "VARCHAR(40)"),
                           ("body", "TEXT")]),
]

#: 1:N and N:M relationships (name, source, target, cardinality)
RELATIONSHIP_SPECS = [
    ("CategoryToProduct", "Category", "Product", "1:N"),
    ("ProductToAccessory", "Product", "Accessory", "1:N"),
    ("ProductToSpecification", "Product", "Specification", "1:N"),
    ("ProductToDocument", "Product", "Document", "1:N"),
    ("ProductToDownload", "Product", "Download", "1:N"),
    ("CountryToSubsidiary", "Country", "Subsidiary", "1:N"),
    ("SubsidiaryToNews", "Subsidiary", "News", "1:N"),
    ("SubsidiaryToEvent", "Subsidiary", "Event", "1:N"),
    ("SubsidiaryToDealer", "Subsidiary", "Dealer", "1:N"),
    ("PriceListToPromotion", "PriceList", "Promotion", "1:N"),
    ("CustomerToSupportCase", "Customer", "SupportCase", "1:N"),
    ("ManagerToPressRelease", "Manager", "PressRelease", "1:N"),
    ("PromotionProducts", "Promotion", "Product", "N:M"),
]

#: entity → (role, child entity): the master-detail pattern each detail
#: page uses when the entity has dependent content
CHILD_ROLE: dict[str, tuple[str, str]] = {
    "Category": ("CategoryToProduct", "Product"),
    "Product": ("ProductToAccessory", "Accessory"),
    "Country": ("CountryToSubsidiary", "Subsidiary"),
    "Subsidiary": ("SubsidiaryToNews", "News"),
    "Customer": ("CustomerToSupportCase", "SupportCase"),
    "Manager": ("ManagerToPressRelease", "PressRelease"),
    "PriceList": ("PriceListToPromotion", "Promotion"),
    "Promotion": ("PromotionProducts", "Product"),
}


@dataclass(frozen=True)
class AcerScale:
    """The §8 structural targets (defaults = the published numbers)."""

    site_views: int = 22
    pages: int = 556
    units: int = 3068

    def __post_init__(self) -> None:
        if self.site_views <= 0 or self.pages < self.site_views:
            raise CodegenError("need at least one page per site view")
        # Coarse bound only: pattern pages carry 5-6 units, CM login pages
        # carry 1.  The builder re-checks exactly once it knows how many
        # site views are content-management ones.
        if not (5 * (self.pages - self.site_views) <= self.units
                <= 6 * self.pages):
            raise CodegenError(
                "the page pattern places 5-6 units per page (1 on login "
                f"pages); {self.units} units is unreachable with "
                f"{self.pages} pages"
            )

    def scaled(self, factor: float) -> "AcerScale":
        """A proportionally smaller (or larger) instance for quick runs."""
        site_views = max(1, round(self.site_views * factor))
        pages = max(site_views, round(self.pages * factor))
        units = min(6 * pages, max(5 * pages, round(self.units * factor)))
        return AcerScale(site_views=site_views, pages=pages, units=units)


def build_acer_data_model() -> ERModel:
    model = ERModel(name="acer-euro")
    for name, attributes in ENTITY_SPECS:
        model.entity(name, [(a, t) for a, t in attributes])
    model.entity("AppUser", [("username", "VARCHAR(40)", True),
                             ("password", "VARCHAR(40)", True)])
    for name, source, target, cardinality in RELATIONSHIP_SPECS:
        model.relate(name, source, target, cardinality)
    return model


def _site_view_kind(position: int, total: int) -> str:
    """First ~45% B2C national sites, ~27% B2B channel, rest internal CM
    (roughly the paper's three stylesheet families)."""
    if position < round(total * 0.45):
        return "b2c"
    if position < round(total * 0.72):
        return "b2b"
    return "cm"


def build_acer_model(scale: AcerScale | None = None) -> WebMLModel:
    """Generate the full portal at the requested scale.

    The page/unit budget is exact: CM site views spend one page (and one
    unit) of their budget on the login page; every other page follows the
    5-or-6-unit pattern.
    """
    scale = scale or AcerScale()
    model = WebMLModel(build_acer_data_model(), name="acer-euro")

    kinds = [_site_view_kind(p, scale.site_views)
             for p in range(scale.site_views)]
    cm_views = sum(1 for kind in kinds if kind == "cm")
    pattern_pages = scale.pages - cm_views
    pattern_units = scale.units - cm_views  # login pages hold 1 unit each
    six_unit_pages = pattern_units - 5 * pattern_pages
    if not (0 <= six_unit_pages <= pattern_pages):
        raise CodegenError(
            f"scale {scale} is unreachable with the 5-6 unit pattern "
            f"({cm_views} login pages reserved)"
        )

    pages_per_view = [scale.pages // scale.site_views] * scale.site_views
    for position in range(scale.pages % scale.site_views):
        pages_per_view[position] += 1

    entity_names = [name for name, _attrs in ENTITY_SPECS]
    entity_cursor = 0
    global_page_index = 0

    for view_position, kind in enumerate(kinds):
        view = model.site_view(
            f"{kind}-view-{view_position + 1}",
            requires_login=(kind == "cm"),
            user_group={"b2c": "customers", "b2b": "dealers",
                        "cm": "editors"}[kind],
        )
        area = view.area(
            {"b2c": "Catalog", "b2b": "Channel", "cm": "Content"}[kind]
        )
        budget = pages_per_view[view_position]
        if kind == "cm":
            _add_cm_login(model, view)
            budget -= 1
        for page_position in range(budget):
            entity = entity_names[entity_cursor % len(entity_names)]
            entity_cursor += 1
            units_here = 6 if global_page_index < six_unit_pages else 5
            container = view if page_position == 0 else area
            _build_pattern_page(
                model, view, container, kind, entity,
                page_position, units_here,
            )
            global_page_index += 1
    return model


def _add_cm_login(model: WebMLModel, view) -> None:
    login_page = view.page("Login")
    form = login_page.entry_unit(
        "Credentials",
        fields=[("username", "text", True), ("password", "password", True)],
    )
    login = view.login_op("Login", user_entity="AppUser")
    model.link(form, login,
               params=[("username", "username"), ("password", "password")])
    model.link(login, login_page, kind=LinkKind.KO)
    # the OK link is wired to the view's first content page afterwards
    view._pending_login = login  # type: ignore[attr-defined]


def _build_pattern_page(model, view, container, kind: str, entity: str,
                        page_position: int, unit_count: int) -> None:
    """One page of the repeating pattern (5 or 6 units)."""
    page = container.page(
        f"{entity} page {page_position + 1}",
        home=(page_position == 0),
        layout_category=("two-columns" if unit_count == 6 else "one-column"),
    )
    # wire the CM login OK link to the first real page of the view
    pending_login = getattr(view, "_pending_login", None)
    if pending_login is not None:
        model.link(pending_login, page, kind=LinkKind.OK)
        view._pending_login = None

    search_field = "name"

    # 1. the entity index
    index = page.index_unit(
        f"{entity} list", entity, display_attributes=["name"],
        order_by=[("name", False)],
    )
    # 2. the detail data unit, default-fed by the index selection
    detail = page.data_unit(f"{entity} detail", entity)
    model.link(index, detail, kind=LinkKind.TRANSPORT, params=[("oid", "oid")])
    # 3. related children (master-detail) or a multidata overview
    if entity in CHILD_ROLE:
        role, child_entity = CHILD_ROLE[entity]
        related = page.index_unit(
            f"{child_entity} of {entity}", child_entity,
            selector=Selector.over_role(role, "parent"),
            display_attributes=["name"],
        )
        model.link(detail, related, kind=LinkKind.TRANSPORT,
                   params=[("oid", "parent")])
    else:
        page.multidata_unit(f"{entity} overview", entity)
    # 4. + 5. keyword search over the entity
    form = page.entry_unit(
        f"Search {entity}", fields=[(search_field, "text", True)]
    )
    hits = page.index_unit(
        f"{entity} hits", entity,
        selector=Selector([AttributeCondition(search_field, "like",
                                              parameter=search_field)]),
        display_attributes=["name"],
    )
    model.link(form, hits, params=[(search_field, search_field)],
               label="search")
    # 6. the optional scroller
    if unit_count == 6:
        page.scroller_unit(
            f"All {entity}", entity, block_size=10,
            display_attributes=["name"], order_by=[("name", False)],
        )

    if kind == "cm":
        _add_cm_operations(model, view, page, entity, index, form,
                           page_position)


def _add_cm_operations(model, view, page, entity: str, index, form,
                       page_position: int) -> None:
    """Content-management pages drive create/modify/delete operations."""
    suffix = f"{entity}{page_position + 1}"
    create = view.create_op(f"Create{suffix}", entity, ["name"])
    modify = view.modify_op(f"Modify{suffix}", entity, ["name"])
    delete = view.delete_op(f"Delete{suffix}", entity)
    model.link(form, create, params=[("name", "name")], label="create")
    model.link(create, page, kind=LinkKind.OK)
    model.link(create, page, kind=LinkKind.KO)
    model.link(index, modify, params=[("oid", "oid")], label="rename")
    model.link(form, modify, params=[("name", "name")])
    model.link(modify, page, kind=LinkKind.OK)
    model.link(modify, page, kind=LinkKind.KO)
    model.link(index, delete, params=[("oid", "oid")], label="delete")
    model.link(delete, page, kind=LinkKind.OK)
    model.link(delete, page, kind=LinkKind.KO)


def acer_statistics(model: WebMLModel) -> dict:
    """The §8 inventory of a generated model."""
    stats = model.statistics()
    entry_units = sum(1 for u in model.all_units() if u.kind == "entry")
    stats["entry_units"] = entry_units
    return stats


def seed_acer_data(app: WebApplication, rows_per_entity: int = 20) -> None:
    """Populate every entity with synthetic rows (FK roles left open for
    parentless entities; child entities attach round-robin)."""
    parent_oids: dict[str, list[int]] = {}
    parent_role_of: dict[str, tuple[str, str]] = {}
    for role, source, target, cardinality in RELATIONSHIP_SPECS:
        if cardinality == "1:N":
            parent_role_of.setdefault(target, (role, source))

    for entity_name, attributes in ENTITY_SPECS:
        rows = []
        for position in range(rows_per_entity):
            row: dict = {}
            for attr_name, attr_type in attributes:
                if attr_type.startswith("VARCHAR") or attr_type == "TEXT":
                    value = f"{entity_name} {attr_name} {position}"
                    if attr_type.startswith("VARCHAR"):
                        from repro.rdb.types import type_from_name

                        value = value[: type_from_name(attr_type).length]
                    row[attr_name] = value
                elif attr_type == "INTEGER":
                    row[attr_name] = position
                elif attr_type == "FLOAT":
                    row[attr_name] = 10.0 + position
                elif attr_type == "DATE":
                    row[attr_name] = f"2002-{(position % 12) + 1:02d}-01"
            parent = parent_role_of.get(entity_name)
            if parent:
                role, source_entity = parent
                parents = parent_oids.get(source_entity)
                if parents:
                    row[role] = parents[position % len(parents)]
            rows.append(row)
        parent_oids[entity_name] = app.seed_entity(entity_name, rows)
    app.seed_entity("AppUser", [{"username": "editor", "password": "acer"}])
