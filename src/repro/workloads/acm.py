"""The ACM Digital Library example (paper Figures 1-2).

The hypertext is Figure 1 verbatim — the Volume Page with its data unit,
transport link, hierarchical index (``Issue[VolumeToIssue]`` NEST
``Paper[IssueToPaper]``), and keyword entry unit — plus the pages its
links point to and a small protected administration site view.
"""

from __future__ import annotations

from repro.app import WebApplication
from repro.er import ERModel
from repro.webml import (
    AttributeCondition,
    HierarchyLevel,
    LinkKind,
    Selector,
    WebMLModel,
)


def build_acm_data_model() -> ERModel:
    model = ERModel(name="acm")
    model.entity("Volume", [("number", "INTEGER", True), ("year", "INTEGER"),
                            ("title", "VARCHAR(120)")])
    model.entity("Issue", [("number", "INTEGER"), ("month", "VARCHAR(20)")])
    model.entity("Paper", [("title", "VARCHAR(200)", True),
                           ("abstract", "TEXT"), ("pages", "INTEGER")])
    model.entity("Author", [("name", "VARCHAR(80)", True)])
    model.entity("User", [("username", "VARCHAR(40)", True),
                          ("password", "VARCHAR(40)", True)])
    model.relate("VolumeToIssue", "Volume", "Issue", "1:N",
                 inverse_name="IssueToVolume")
    model.relate("IssueToPaper", "Issue", "Paper", "1:N",
                 inverse_name="PaperToIssue")
    model.relate("Authorship", "Paper", "Author", "N:M",
                 inverse_name="AuthorOf")
    return model


def build_acm_model() -> WebMLModel:
    """Figure 1's Volume Page plus list/detail/search/admin flows."""
    model = WebMLModel(build_acm_data_model(), name="acm-dl")
    view = model.site_view("public")

    volumes = view.page("Volumes", home=True, landmark=True)
    volume_index = volumes.index_unit(
        "All volumes", "Volume",
        display_attributes=["number", "year"],
        order_by=[("year", False)],
    )

    volume_page = view.page("Volume Page")
    volume_data = volume_page.data_unit(
        "Volume data", "Volume",
        display_attributes=["number", "year", "title"],
    )
    issues_papers = volume_page.hierarchical_index(
        "Issues&Papers",
        levels=[
            HierarchyLevel("Issue", role="VolumeToIssue",
                           display_attributes=["number"]),
            HierarchyLevel("Paper", role="IssueToPaper",
                           display_attributes=["title"]),
        ],
    )
    keyword_entry = volume_page.entry_unit(
        "Enter keyword", fields=[("keyword", "text", True)]
    )

    paper_page = view.page("Paper details")
    paper_data = paper_page.data_unit("Paper data", "Paper")
    authors = paper_page.index_unit(
        "Authors", "Author",
        selector=Selector.over_role("Authorship", "paper"),
        display_attributes=["name"],
    )

    search_page = view.page("SearchResults")
    matching = search_page.index_unit(
        "Matching papers", "Paper",
        selector=Selector([AttributeCondition("title", "like",
                                              parameter="keyword")]),
        display_attributes=["title"],
    )

    browse_page = view.page("Browse papers", landmark=True)
    browse_page.scroller_unit(
        "Paper scroller", "Paper", block_size=2,
        display_attributes=["title"], order_by=[("title", False)],
    )

    model.link(volume_index, volume_data, params=[("oid", "oid")],
               label="volume details")
    model.link(volume_data, issues_papers, kind=LinkKind.TRANSPORT,
               params=[("oid", "volume_to_issue")])
    model.link(issues_papers, paper_data, params=[("oid", "oid")],
               label="paper details")
    model.link(paper_data, authors, kind=LinkKind.TRANSPORT,
               params=[("oid", "paper")])
    model.link(keyword_entry, matching, params=[("keyword", "keyword")],
               label="search")
    model.link(matching, paper_data, params=[("oid", "oid")])

    _add_admin_site_view(model)
    return model


def _add_admin_site_view(model: WebMLModel) -> None:
    admin = model.site_view("admin", requires_login=True)
    admin_home = admin.page("Admin Home", home=True)
    paper_list = admin_home.index_unit(
        "All papers", "Paper", display_attributes=["title"]
    )
    new_paper = admin_home.entry_unit(
        "New paper", fields=[("title", "text", True), ("pages", "text")]
    )
    login_page = admin.page("Login")
    login_form = login_page.entry_unit(
        "Credentials",
        fields=[("username", "text", True), ("password", "password", True)],
    )

    create_paper = admin.create_op("CreatePaper", "Paper", ["title", "pages"])
    delete_paper = admin.delete_op("DeletePaper", "Paper")
    login = admin.login_op("Login")
    logout = admin.logout_op("Logout")

    model.link(new_paper, create_paper,
               params=[("title", "title"), ("pages", "pages")])
    model.link(create_paper, admin_home, kind=LinkKind.OK)
    model.link(create_paper, admin_home, kind=LinkKind.KO)
    model.link(paper_list, delete_paper, params=[("oid", "oid")],
               label="delete")
    model.link(delete_paper, admin_home, kind=LinkKind.OK)
    model.link(delete_paper, admin_home, kind=LinkKind.KO)
    model.link(login_form, login,
               params=[("username", "username"), ("password", "password")])
    model.link(login, admin_home, kind=LinkKind.OK)
    model.link(login, login_page, kind=LinkKind.KO)
    model.link(admin_home, logout)
    model.link(logout, login_page, kind=LinkKind.OK)


def seed_acm_data(app: WebApplication, volumes: int = 2,
                  issues_per_volume: int = 2,
                  papers_per_issue: int = 2) -> dict:
    """Seed TODS-flavoured content; returns the oids by entity.

    The default (2/2/2) matches the hand-written fixtures; larger values
    scale the dataset for serving benchmarks.
    """
    oids: dict = {"volumes": [], "issues": [], "papers": [], "authors": []}
    paper_counter = 0
    for volume_number in range(volumes):
        [volume_oid] = app.seed_entity("Volume", [{
            "number": 27 + volume_number,
            "year": 2002 + volume_number,
            "title": f"TODS Volume {27 + volume_number}",
        }])
        oids["volumes"].append(volume_oid)
        for issue_number in range(issues_per_volume):
            [issue_oid] = app.seed_entity("Issue", [{
                "number": issue_number + 1,
                "month": ("March", "June", "September", "December")[
                    issue_number % 4],
                "VolumeToIssue": volume_oid,
            }])
            oids["issues"].append(issue_oid)
            for _ in range(papers_per_issue):
                paper_counter += 1
                [paper_oid] = app.seed_entity("Paper", [{
                    "title": f"Paper {paper_counter}: Data-Intensive Webs",
                    "pages": 10 + paper_counter % 30,
                    "IssueToPaper": issue_oid,
                }])
                oids["papers"].append(paper_oid)
    oids["authors"] = app.seed_entity("Author", [
        {"name": "S. Ceri"}, {"name": "P. Fraternali"},
    ])
    if oids["papers"]:
        app.connect_instances("Authorship", oids["papers"][-1],
                              oids["authors"][0])
        app.connect_instances("Authorship", oids["papers"][-1],
                              oids["authors"][1])
    app.seed_entity("User", [{"username": "admin", "password": "secret"}])
    return oids


def build_acm_application(view_renderer=None, bean_cache=None,
                          page_cache=None,
                          **seed_kwargs) -> tuple[WebApplication, dict]:
    """Build, deploy and seed the ACM application in one call."""
    app = WebApplication(build_acm_model(), view_renderer=view_renderer,
                         bean_cache=bean_cache, page_cache=page_cache)
    oids = seed_acm_data(app, **seed_kwargs)
    app.ctx.stats.reset()
    app.database.stats.reset()
    return app, oids
