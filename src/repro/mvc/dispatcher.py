"""The front controller (the servlet of Figure 3), as an explicit pipeline.

Receives :class:`HttpRequest` objects, resolves the session, routes
through the Controller's action mappings, runs the action, and either
renders the resulting Model state through the pluggable view renderer or
emits a redirect.  Site views flagged ``requires_login`` are enforced
here, before any action runs.

The request lifecycle is an explicit pipeline of named stages
(:data:`FrontController.PIPELINE`), each a pure step over a shared
:class:`PipelineState`:

1. **route** — reserved paths, home redirects, action-mapping
   resolution, session binding;
2. **protect** — site-view login enforcement, before any action runs;
3. **execute** — page-cache consult / action execution / rendering;
4. **deliver** — conditional HTTP and compression (the shared
   :mod:`repro.httpcore.delivery` policy).

A stage that produces a response short-circuits the rest of the chain
(deliver always runs).  The same stages back three entry points:

- :meth:`handle` — the full request path every server uses;
- :meth:`probe_cached` — the *edge fast path*: answer a GET page
  purely from the page cache (stored 200 or 304), without actions or
  rendering — cheap enough for an event loop to serve inline;
- :meth:`handle_streaming` — the chunked path: the response head and
  the compiled template's static prefix leave before the unit
  services run (see :class:`~repro.httpcore.delivery.StreamedPage`).

Delivery invariants this tier maintains:

- every 200 HTML GET leaves with an ``ETag`` over the *identity* body,
  whether it came from the page cache (validator precomputed at store
  time) or a fresh render (digested in the deliver stage) — so a 304
  is always safe to serve against a matching ``If-None-Match``;
- a page-cache hit and a fresh render of the same model state produce
  byte-identical bodies, hence identical validators — and the edge
  fast path reuses the exact entry/response construction of the full
  path, so inline and worker-served bytes cannot diverge;
- operation requests (POSTs) never touch the page cache and are never
  made conditional — their redirects always reach the action tier;
- observability is read-only: the request trace and the ``/_status``
  page observe the pipeline without changing any response byte (the
  ``X-Trace`` summary header is added only when the client asked for
  it with an ``X-Trace`` request header).

``/_status`` is a reserved path serving the observability snapshot
(plain text, or JSON with ``?format=json``).
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass

from repro.caching.page_cache import canonical_params
from repro.errors import ControllerError, ReproError
from repro.httpcore.delivery import (
    GZIP_MIN_BYTES,
    StreamedPage,
    cache_control_for,
    entry_response,
    finalize_delivery,
)
from repro.mvc.actions import ActionOutcome, OperationAction, PageAction
from repro.mvc.controller import ActionMapping, Controller
from repro.mvc.http import (
    HttpRequest,
    HttpResponse,
    SessionStore,
    build_url,
)
from repro.obs import (
    build_status,
    render_status_json,
    render_status_text,
    span,
    trace,
)
from repro.obs.trace import current_span_var
from repro.services import PageResult, RuntimeContext

#: view renderer signature: (page_result, request, controller) -> html
ViewRenderer = Callable[[PageResult, HttpRequest, Controller], str]


def plain_view_renderer(page_result: PageResult, request: HttpRequest,
                        controller: Controller) -> str:
    """A minimal fallback View (tests/benchmarks that skip presentation)."""
    lines = [f"<html><body><h1>{page_result.name}</h1>"]
    for bean in page_result.beans.values():
        lines.append(f"<div class='unit' id='{bean.unit_id}'>{bean.name}: "
                     f"{bean.row_count()} row(s)</div>")
    lines.append("</body></html>")
    return "".join(lines)


@dataclass
class PipelineState:
    """What the pipeline stages accumulate for one request."""

    request: HttpRequest
    session: object | None = None
    mapping: ActionMapping | None = None
    response: HttpResponse | None = None


class FrontController:
    """The servlet: one instance serves every request of an application."""

    #: bodies below this size are not worth a gzip round-trip
    #: (the shared policy constant, re-exported for callers)
    GZIP_MIN_BYTES = GZIP_MIN_BYTES

    #: the stage names of the request pipeline, in execution order
    PIPELINE = ("route", "protect", "execute", "deliver")

    def __init__(
        self,
        controller: Controller,
        ctx: RuntimeContext,
        view_renderer: ViewRenderer | None = None,
        page_cache=None,
        device_classifier: Callable[[str], str] | None = None,
    ):
        self.controller = controller
        self.ctx = ctx
        self.sessions = SessionStore()
        self.view_renderer = view_renderer or plain_view_renderer
        self.page_cache = page_cache
        self.device_classifier = device_classifier or (lambda user_agent: "html")
        self.page_action = PageAction(ctx)
        self.operation_action = OperationAction(ctx)
        self.requests_served = 0
        #: the short-circuiting stages; deliver is applied by _serve
        self._stages = (self._stage_route, self._stage_protect,
                        self._stage_execute)
        # metric objects resolved once — the per-request path must not
        # pay registry dictionary lookups (E16 holds it under 5%).
        # Per-status counts live in a plain dict bumped inline (one
        # C-level increment); /_status folds them into the counters
        # section at snapshot time.
        self._obs = ctx.obs
        self._latency_histogram = ctx.obs.metrics.histogram(
            "http.request_seconds"
        )
        self.status_counts: dict[int, int] = defaultdict(int)
        self._trace_countdown = 0

    #: the observability snapshot lives here, outside every site view
    STATUS_PATH = "/_status"

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request; unexpected failures become 500 responses
        (a servlet container never lets an exception escape to the
        socket).

        The instrumentation here is written for its *unsampled* common
        case: with observability on but this request losing the
        sampling draw, the added work is one plain dict increment and
        a handful of attribute reads — that is the budget E16 holds
        under 5% of a page-cache-hit p50.  The span tree *and* the
        request-latency timestamps ride the same sampling draw
        (``Observability.trace_every``, or an ``X-Trace`` request
        header): percentiles estimated from one request in thirty-two
        are as good as percentiles from all of them, and a histogram
        fed by the sample keeps ``time.perf_counter`` itself off the
        common path.  Sampling is a countdown held by this controller
        (no method call, no modulo), and the request *total* is never
        counted — ``/_status`` derives it as the sum of the per-status
        counts.
        """
        if request.path == self.STATUS_PATH:
            return self._status_response(request)
        obs = self._obs
        if not obs.enabled:
            return self._serve(request)
        if obs.tracing_enabled:
            forced = "X-Trace" in request.headers
            countdown = self._trace_countdown - 1
            self._trace_countdown = countdown
            if forced or countdown < 0:
                return self._serve_traced(request, obs, forced, countdown)
        response = self._serve(request)
        self.status_counts[response.status] += 1
        return response

    def _serve_traced(self, request: HttpRequest, obs, forced: bool,
                      countdown: int) -> HttpResponse:
        """The sampled (or ``X-Trace``-forced) request path: open the
        span tree, time the request into the latency histogram, and
        hand the finished trace to the response."""
        if countdown < 0:
            self._trace_countdown = obs.trace_every - 1
        started = time.perf_counter()
        with trace(f"{request.method} {request.path}") as req_trace:
            response = self._serve(request)
        self._latency_histogram.record(time.perf_counter() - started)
        self.status_counts[response.status] += 1
        response.trace = req_trace
        if forced:
            response.headers["X-Trace"] = req_trace.summary()
        return response

    def _serve(self, request: HttpRequest) -> HttpResponse:
        """Run the pipeline: short-circuiting stages, then deliver."""
        state = PipelineState(request)
        try:
            for stage in self._stages:
                stage(state)
                if state.response is not None:
                    break
        except ReproError as exc:
            return HttpResponse(
                status=500,
                body=f"Internal error: {exc}",
                content_type="text/plain",
            )
        return self._stage_deliver(state)

    def _status_response(self, request: HttpRequest) -> HttpResponse:
        """The built-in observability page: what the application knows
        about itself, in greppable text or machine-readable JSON."""
        status = build_status(self)
        wants_json = (
            request.params.get("format") == "json"
            or "application/json" in request.headers.get("Accept", "")
        )
        if wants_json:
            return HttpResponse(
                status=200, body=render_status_json(status),
                content_type="application/json",
            )
        return HttpResponse(
            status=200, body=render_status_text(status),
            content_type="text/plain",
        )

    # -- stage: route ---------------------------------------------------------

    def _stage_route(self, state: PipelineState) -> None:
        """Bind the session and resolve the path to an action mapping."""
        request = state.request
        self.requests_served += 1
        session = self.sessions.get_or_create(request.session_id)
        request.session_id = session.id
        state.session = session

        # "/" or "/<siteview>" land on the site view's home page.
        if request.path == "/" or (
            not self.controller.has_path(request.path)
            and request.path.count("/") == 1
        ):
            state.response = self._home_redirect(request)
            return

        try:
            state.mapping = self.controller.resolve(request.path)
        except ControllerError:
            state.response = HttpResponse.not_found(request.path)

    # -- stage: protect -------------------------------------------------------

    def _stage_protect(self, state: PipelineState) -> None:
        """Enforce site-view protection before any action runs."""
        mapping = state.mapping
        session = state.session
        home = self.controller.homes.get(mapping.site_view_id)
        if home is not None and home.requires_login and not session.is_authenticated:
            if not mapping.public and not self._is_login_operation(mapping):
                state.response = HttpResponse.forbidden(
                    f"site view {mapping.site_view_id} requires login"
                )

    # -- stage: execute -------------------------------------------------------

    def _stage_execute(self, state: PipelineState) -> None:
        """Run the mapped action (through the page cache for GET pages)."""
        mapping = state.mapping
        request = state.request
        session = state.session
        if mapping.action_type == "PageAction":
            if self.page_cache is not None and request.method == "GET":
                state.response = self._respond_from_page_cache(
                    mapping, request, session
                )
                return
            with span("mvc.action", tier="mvc", action="page",
                      page=mapping.page_id):
                outcome = self.page_action.perform(mapping, request, session)
        elif mapping.action_type == "OperationAction":
            with span("mvc.action", tier="mvc", action="operation",
                      operation=mapping.operation_id):
                outcome = self.operation_action.perform(
                    mapping, request, session
                )
        else:
            raise ControllerError(f"unknown action type {mapping.action_type!r}")
        state.response = self._respond(outcome, request, session)

    # -- stage: deliver -------------------------------------------------------

    def _stage_deliver(self, state: PipelineState) -> HttpResponse:
        """Conditional and compressed delivery for every 200 HTML GET
        (the shared edge policy — see :mod:`repro.httpcore.delivery`)."""
        return finalize_delivery(state.request, state.response)

    def _is_login_operation(self, mapping) -> bool:
        if mapping.action_type != "OperationAction":
            return False
        descriptor = self.ctx.registry.operation(mapping.operation_id)
        return descriptor.kind == "login"

    def _home_redirect(self, request: HttpRequest) -> HttpResponse:
        if request.path == "/":
            if not self.controller.homes:
                return HttpResponse.not_found("no site views configured")
            site_view_id = next(iter(self.controller.homes))
        else:
            site_view_id = request.path.strip("/")
        try:
            home = self.controller.home_for(site_view_id)
        except ControllerError:
            return HttpResponse.not_found(request.path)
        return HttpResponse.redirect(
            self.controller.page_path(site_view_id, home.page_id)
        )

    # -- level-0 page cache ---------------------------------------------------

    def _page_key(self, mapping: ActionMapping, request: HttpRequest,
                  session) -> tuple:
        """The page-cache key: everything that may legally change the
        bytes — the page, the canonicalized parameters, the device
        class the presentation tier would select, and the
        authenticated principal."""
        return (
            mapping.page_id,
            canonical_params(request.params),
            self.device_classifier(request.user_agent),
            f"user:{session.user_oid}" if session.is_authenticated else "anon",
        )

    def _respond_from_page_cache(self, mapping, request: HttpRequest,
                                 session) -> HttpResponse:
        """Serve a GET page from the whole-response cache.

        A miss single-flights the full action + view path and stores
        the response with the union of the page's unit dependency
        sets, so operation writes invalidate exactly the dependent
        pages.
        """
        key = self._page_key(mapping, request, session)

        built_fresh = False

        def build():
            nonlocal built_fresh
            built_fresh = True
            with span("mvc.action", tier="mvc", action="page",
                      page=mapping.page_id):
                outcome = self.page_action.perform(mapping, request, session)
            with span("mvc.render", tier="mvc", page=mapping.page_id):
                body = self.view_renderer(
                    outcome.page_result, request, self.controller
                )
            entities, roles = self._page_dependencies(mapping.page_id)
            return self.page_cache.make_entry(body, entities, roles)

        # probe span only when a trace is live: a cache hit is the p50
        # case and must not pay span construction for nobody to read
        if current_span_var.get() is None:
            entry = self.page_cache.get_or_build(key, build)
        else:
            with span("cache.page", tier="cache", level="page",
                      page=mapping.page_id) as probe:
                entry = self.page_cache.get_or_build(key, build)
                probe.tags["hit"] = not built_fresh
        return entry_response(entry, request, self._cache_control(session))

    # -- the edge fast path ---------------------------------------------------

    def probe_cached(self, request: HttpRequest) -> HttpResponse | None:
        """Answer a GET page request purely from the page cache, or
        return ``None``.

        This is the async edge's inline path: a stored entry becomes a
        200 (precomputed gzip) or a 304 without running any action,
        render, or digest — bounded, lock-cheap work an event loop can
        afford.  Anything requiring computation (cache miss, redirect,
        protection failure, operation, ``/_status``) returns ``None``
        and takes the full :meth:`handle` path on a worker.  Served
        responses are counted exactly like :meth:`handle`'s
        (``requests_served`` + per-status counts); tracing never
        samples inline hits — the traced path is the one that does
        work.
        """
        if (self.page_cache is None or request.method != "GET"
                or request.path == self.STATUS_PATH):
            return None
        mapping = self.controller.mappings.get(request.path)
        if mapping is None or mapping.action_type != "PageAction":
            return None
        session = self.sessions.get_or_create(request.session_id)
        request.session_id = session.id
        home = self.controller.homes.get(mapping.site_view_id)
        if (home is not None and home.requires_login
                and not session.is_authenticated and not mapping.public):
            return None  # the full pipeline produces the 403
        entry = self.page_cache.peek(self._page_key(mapping, request, session))
        if entry is None:
            return None
        self.requests_served += 1
        response = entry_response(entry, request, self._cache_control(session))
        self.status_counts[response.status] += 1
        return response

    # -- the streaming path ---------------------------------------------------

    def handle_streaming(self, request: HttpRequest) -> StreamedPage | None:
        """Serve a GET page as a chunk stream, or return ``None``.

        The stream's head (status + headers) is available immediately;
        the compiled template's leading static markup streams before
        the page action runs, and each dynamic slot follows as it
        renders (fragment-cache hits splice instantly).  Requirements:
        a view renderer exposing ``stream_chunks`` (the presentation
        tier's compiled templates) and a page-cache *miss* — hits and
        everything non-streamable return ``None`` so the caller falls
        back to :meth:`probe_cached`/:meth:`handle`.

        Cache integration mirrors the buffered path: the stream holds
        the page's single-flight slot while rendering (concurrent
        misses wait, then reuse the stored entry) and the finished
        body is stored unless an invalidation raced the build
        (generation guard).  Closing the iterator early — a client
        disconnect — releases the slot without storing.  A streamed
        response carries no ``ETag``: a validator needs the complete
        body, which revisits get from the stored entry.
        """
        stream_chunks = getattr(self.view_renderer, "stream_chunks", None)
        if (stream_chunks is None or request.method != "GET"
                or request.path == self.STATUS_PATH):
            return None
        mapping = self.controller.mappings.get(request.path)
        if mapping is None or mapping.action_type != "PageAction":
            return None
        session = self.sessions.get_or_create(request.session_id)
        request.session_id = session.id
        home = self.controller.homes.get(mapping.site_view_id)
        if (home is not None and home.requires_login
                and not session.is_authenticated and not mapping.public):
            return None

        key = None
        generation = None
        if self.page_cache is not None:
            key = self._page_key(mapping, request, session)
            if self.page_cache.peek(key) is not None:
                return None  # a stored entry serves faster than a stream
            if not self.page_cache.begin_flight(key):
                return None  # another request is building: wait via handle()
            generation = self.page_cache.generation

        def page_result_factory():
            with span("mvc.action", tier="mvc", action="page",
                      page=mapping.page_id):
                return self.page_action.perform(
                    mapping, request, session
                ).page_result

        try:
            raw_chunks = stream_chunks(
                mapping.page_id, request, self.controller,
                page_result_factory,
            )
        except ReproError:
            if key is not None:
                self.page_cache.finish_flight(key)
            return None  # no template for the page: the full path 500s

        def chunks():
            produced: list[str] = []
            completed = False
            try:
                for chunk in raw_chunks:
                    produced.append(chunk)
                    yield chunk
                completed = True
            finally:
                if key is not None:
                    try:
                        if completed:
                            entities, roles = self._page_dependencies(
                                mapping.page_id
                            )
                            entry = self.page_cache.make_entry(
                                "".join(produced), entities, roles
                            )
                            self.page_cache.put_if_current(
                                key, entry, generation
                            )
                    finally:
                        self.page_cache.finish_flight(key)

        self.requests_served += 1
        self.status_counts[200] += 1
        response = HttpResponse(
            status=200, body="",
            headers={"Cache-Control": self._cache_control(session)},
        )
        return StreamedPage(response=response, chunks=chunks())

    def _page_dependencies(self, page_id: str) -> tuple[set, set]:
        """The union of the §6 dependency sets of the page's units."""
        descriptor = self.ctx.registry.page(page_id)
        entities: set = set()
        roles: set = set()
        for unit_id in descriptor.unit_order:
            unit = self.ctx.registry.unit(unit_id)
            entities.update(unit.depends_on_entities)
            roles.update(unit.depends_on_roles)
        return entities, roles

    def _cache_control(self, session) -> str:
        ttl = self.page_cache.ttl_seconds if self.page_cache is not None else None
        return cache_control_for(session.is_authenticated, ttl)

    def _respond(self, outcome: ActionOutcome, request: HttpRequest,
                 session) -> HttpResponse:
        if outcome.kind == "redirect":
            path = self.controller.path_of_page(outcome.redirect_page_id)
            params = {
                k: _to_request_value(v)
                for k, v in outcome.redirect_params.items()
            }
            return HttpResponse.redirect(build_url(path, params))
        with span("mvc.render", tier="mvc"):
            body = self.view_renderer(
                outcome.page_result, request, self.controller
            )
        return HttpResponse(status=200, body=body)


def _to_request_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return ",".join(str(v) for v in value)
    return str(value)
