"""The front controller (the servlet of Figure 3).

Receives :class:`HttpRequest` objects, resolves the session, routes
through the Controller's action mappings, runs the action, and either
renders the resulting Model state through the pluggable view renderer or
emits a redirect.  Site views flagged ``requires_login`` are enforced
here, before any action runs.

The controller is also the delivery tier's integration point (§6):

- **level-0 page cache** — GET page requests are answered from whole
  cached responses keyed by (page, canonical parameters, device,
  principal); misses single-flight the full action+view path;
- **conditional HTTP** — every 200 HTML response carries a content
  digest ``ETag``; an ``If-None-Match`` revalidation that still
  matches costs a 304 and zero body bytes;
- **compression** — ``Accept-Encoding: gzip`` negotiates a gzip body,
  precomputed for page-cache entries.

Delivery invariants this tier maintains:

- every 200 HTML GET leaves with an ``ETag`` over the *identity* body,
  whether it came from the page cache (validator precomputed at store
  time) or a fresh render (digested in :meth:`_finalize`) — so a 304
  is always safe to serve against a matching ``If-None-Match``;
- a page-cache hit and a fresh render of the same model state produce
  byte-identical bodies, hence identical validators;
- operation requests (POSTs) never touch the page cache and are never
  made conditional — their redirects always reach the action tier;
- observability is read-only: the request trace and the ``/_status``
  page observe the pipeline without changing any response byte (the
  ``X-Trace`` summary header is added only when the client asked for
  it with an ``X-Trace`` request header).

``/_status`` is a reserved path serving the observability snapshot
(plain text, or JSON with ``?format=json``).
"""

from __future__ import annotations

import gzip
import time
from collections import defaultdict
from collections.abc import Callable

from repro.caching.page_cache import canonical_params, content_etag
from repro.errors import ControllerError, ReproError
from repro.mvc.actions import ActionOutcome, OperationAction, PageAction
from repro.mvc.controller import Controller
from repro.mvc.http import (
    HttpRequest,
    HttpResponse,
    SessionStore,
    build_url,
)
from repro.obs import (
    build_status,
    render_status_json,
    render_status_text,
    span,
    trace,
)
from repro.obs.trace import current_span_var
from repro.services import PageResult, RuntimeContext

#: view renderer signature: (page_result, request, controller) -> html
ViewRenderer = Callable[[PageResult, HttpRequest, Controller], str]


def plain_view_renderer(page_result: PageResult, request: HttpRequest,
                        controller: Controller) -> str:
    """A minimal fallback View (tests/benchmarks that skip presentation)."""
    lines = [f"<html><body><h1>{page_result.name}</h1>"]
    for bean in page_result.beans.values():
        lines.append(f"<div class='unit' id='{bean.unit_id}'>{bean.name}: "
                     f"{bean.row_count()} row(s)</div>")
    lines.append("</body></html>")
    return "".join(lines)


class FrontController:
    """The servlet: one instance serves every request of an application."""

    #: bodies below this size are not worth a gzip round-trip
    GZIP_MIN_BYTES = 200

    def __init__(
        self,
        controller: Controller,
        ctx: RuntimeContext,
        view_renderer: ViewRenderer | None = None,
        page_cache=None,
        device_classifier: Callable[[str], str] | None = None,
    ):
        self.controller = controller
        self.ctx = ctx
        self.sessions = SessionStore()
        self.view_renderer = view_renderer or plain_view_renderer
        self.page_cache = page_cache
        self.device_classifier = device_classifier or (lambda user_agent: "html")
        self.page_action = PageAction(ctx)
        self.operation_action = OperationAction(ctx)
        self.requests_served = 0
        # metric objects resolved once — the per-request path must not
        # pay registry dictionary lookups (E16 holds it under 5%).
        # Per-status counts live in a plain dict bumped inline (one
        # C-level increment); /_status folds them into the counters
        # section at snapshot time.
        self._obs = ctx.obs
        self._latency_histogram = ctx.obs.metrics.histogram(
            "http.request_seconds"
        )
        self.status_counts: dict[int, int] = defaultdict(int)
        self._trace_countdown = 0

    #: the observability snapshot lives here, outside every site view
    STATUS_PATH = "/_status"

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request; unexpected failures become 500 responses
        (a servlet container never lets an exception escape to the
        socket).

        The instrumentation here is written for its *unsampled* common
        case: with observability on but this request losing the
        sampling draw, the added work is one plain dict increment and
        a handful of attribute reads — that is the budget E16 holds
        under 5% of a page-cache-hit p50.  The span tree *and* the
        request-latency timestamps ride the same sampling draw
        (``Observability.trace_every``, or an ``X-Trace`` request
        header): percentiles estimated from one request in thirty-two
        are as good as percentiles from all of them, and a histogram
        fed by the sample keeps ``time.perf_counter`` itself off the
        common path.  Sampling is a countdown held by this controller
        (no method call, no modulo), and the request *total* is never
        counted — ``/_status`` derives it as the sum of the per-status
        counts.
        """
        if request.path == self.STATUS_PATH:
            return self._status_response(request)
        obs = self._obs
        if not obs.enabled:
            return self._serve(request)
        if obs.tracing_enabled:
            forced = "X-Trace" in request.headers
            countdown = self._trace_countdown - 1
            self._trace_countdown = countdown
            if forced or countdown < 0:
                return self._serve_traced(request, obs, forced, countdown)
        response = self._serve(request)
        self.status_counts[response.status] += 1
        return response

    def _serve_traced(self, request: HttpRequest, obs, forced: bool,
                      countdown: int) -> HttpResponse:
        """The sampled (or ``X-Trace``-forced) request path: open the
        span tree, time the request into the latency histogram, and
        hand the finished trace to the response."""
        if countdown < 0:
            self._trace_countdown = obs.trace_every - 1
        started = time.perf_counter()
        with trace(f"{request.method} {request.path}") as req_trace:
            response = self._serve(request)
        self._latency_histogram.record(time.perf_counter() - started)
        self.status_counts[response.status] += 1
        response.trace = req_trace
        if forced:
            response.headers["X-Trace"] = req_trace.summary()
        return response

    def _serve(self, request: HttpRequest) -> HttpResponse:
        try:
            response = self._handle(request)
        except ReproError as exc:
            return HttpResponse(
                status=500,
                body=f"Internal error: {exc}",
                content_type="text/plain",
            )
        return self._finalize(request, response)

    def _status_response(self, request: HttpRequest) -> HttpResponse:
        """The built-in observability page: what the application knows
        about itself, in greppable text or machine-readable JSON."""
        status = build_status(self)
        wants_json = (
            request.params.get("format") == "json"
            or "application/json" in request.headers.get("Accept", "")
        )
        if wants_json:
            return HttpResponse(
                status=200, body=render_status_json(status),
                content_type="application/json",
            )
        return HttpResponse(
            status=200, body=render_status_text(status),
            content_type="text/plain",
        )

    def _handle(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        session = self.sessions.get_or_create(request.session_id)
        request.session_id = session.id

        # "/" or "/<siteview>" land on the site view's home page.
        if request.path == "/" or (
            not self.controller.has_path(request.path)
            and request.path.count("/") == 1
        ):
            return self._home_redirect(request)

        try:
            mapping = self.controller.resolve(request.path)
        except ControllerError:
            return HttpResponse.not_found(request.path)

        home = self.controller.homes.get(mapping.site_view_id)
        if home is not None and home.requires_login and not session.is_authenticated:
            if not mapping.public and not self._is_login_operation(mapping):
                return HttpResponse.forbidden(
                    f"site view {mapping.site_view_id} requires login"
                )

        if mapping.action_type == "PageAction":
            if self.page_cache is not None and request.method == "GET":
                return self._respond_from_page_cache(mapping, request, session)
            with span("mvc.action", tier="mvc", action="page",
                      page=mapping.page_id):
                outcome = self.page_action.perform(mapping, request, session)
        elif mapping.action_type == "OperationAction":
            with span("mvc.action", tier="mvc", action="operation",
                      operation=mapping.operation_id):
                outcome = self.operation_action.perform(
                    mapping, request, session
                )
        else:
            raise ControllerError(f"unknown action type {mapping.action_type!r}")
        return self._respond(outcome, request, session)

    def _is_login_operation(self, mapping) -> bool:
        if mapping.action_type != "OperationAction":
            return False
        descriptor = self.ctx.registry.operation(mapping.operation_id)
        return descriptor.kind == "login"

    def _home_redirect(self, request: HttpRequest) -> HttpResponse:
        if request.path == "/":
            if not self.controller.homes:
                return HttpResponse.not_found("no site views configured")
            site_view_id = next(iter(self.controller.homes))
        else:
            site_view_id = request.path.strip("/")
        try:
            home = self.controller.home_for(site_view_id)
        except ControllerError:
            return HttpResponse.not_found(request.path)
        return HttpResponse.redirect(
            self.controller.page_path(site_view_id, home.page_id)
        )

    # -- level-0 page cache ---------------------------------------------------

    def _respond_from_page_cache(self, mapping, request: HttpRequest,
                                 session) -> HttpResponse:
        """Serve a GET page from the whole-response cache.

        The key captures everything that may legally change the bytes:
        the page, the canonicalized parameters, the device class the
        presentation tier would select, and the authenticated
        principal.  A miss single-flights the full action + view path
        and stores the response with the union of the page's unit
        dependency sets, so operation writes invalidate exactly the
        dependent pages.
        """
        key = (
            mapping.page_id,
            canonical_params(request.params),
            self.device_classifier(request.user_agent),
            f"user:{session.user_oid}" if session.is_authenticated else "anon",
        )

        built_fresh = False

        def build():
            nonlocal built_fresh
            built_fresh = True
            with span("mvc.action", tier="mvc", action="page",
                      page=mapping.page_id):
                outcome = self.page_action.perform(mapping, request, session)
            with span("mvc.render", tier="mvc", page=mapping.page_id):
                body = self.view_renderer(
                    outcome.page_result, request, self.controller
                )
            entities, roles = self._page_dependencies(mapping.page_id)
            return self.page_cache.make_entry(body, entities, roles)

        # probe span only when a trace is live: a cache hit is the p50
        # case and must not pay span construction for nobody to read
        if current_span_var.get() is None:
            entry = self.page_cache.get_or_build(key, build)
        else:
            with span("cache.page", tier="cache", level="page",
                      page=mapping.page_id) as probe:
                entry = self.page_cache.get_or_build(key, build)
                probe.tags["hit"] = not built_fresh
        cache_control = self._cache_control(session)
        if self._etag_matches(request.headers.get("If-None-Match"), entry.etag):
            return HttpResponse.not_modified(
                entry.etag, {"Cache-Control": cache_control}
            )
        response = HttpResponse(
            status=200, body=entry.body,
            headers={"ETag": entry.etag, "Cache-Control": cache_control},
        )
        if (self._accepts_gzip(request)
                and len(entry.body) >= self.GZIP_MIN_BYTES):
            response.encoded_body = entry.gzip_body
            response.headers["Content-Encoding"] = "gzip"
            response.headers["Vary"] = "Accept-Encoding"
        return response

    def _page_dependencies(self, page_id: str) -> tuple[set, set]:
        """The union of the §6 dependency sets of the page's units."""
        descriptor = self.ctx.registry.page(page_id)
        entities: set = set()
        roles: set = set()
        for unit_id in descriptor.unit_order:
            unit = self.ctx.registry.unit(unit_id)
            entities.update(unit.depends_on_entities)
            roles.update(unit.depends_on_roles)
        return entities, roles

    def _cache_control(self, session) -> str:
        """Derived from the cache policy: a TTL becomes ``max-age``,
        model-driven entries must revalidate (the ETag makes that a
        304)."""
        scope = "private" if session.is_authenticated else "public"
        ttl = self.page_cache.ttl_seconds if self.page_cache is not None else None
        if ttl:
            return f"{scope}, max-age={int(ttl)}"
        return f"{scope}, no-cache"

    # -- conditional HTTP -----------------------------------------------------

    def _finalize(self, request: HttpRequest,
                  response: HttpResponse) -> HttpResponse:
        """Conditional and compressed delivery for every 200 HTML GET.

        Page-cache responses arrive with their validator and encoding
        already attached (precomputed at store time); everything else
        is digested and negotiated here.
        """
        if (request.method != "GET" or response.status != 200
                or response.content_type != "text/html"):
            return response
        etag = response.headers.get("ETag")
        if etag is None:
            etag = content_etag(response.body)
            response.headers["ETag"] = etag
        response.headers.setdefault("Cache-Control", "no-cache")
        if self._etag_matches(request.headers.get("If-None-Match"), etag):
            return HttpResponse.not_modified(
                etag, {"Cache-Control": response.headers["Cache-Control"]}
            )
        if ("Content-Encoding" not in response.headers
                and self._accepts_gzip(request)
                and len(response.body) >= self.GZIP_MIN_BYTES):
            response.encoded_body = gzip.compress(
                response.body.encode(), mtime=0
            )
            response.headers["Content-Encoding"] = "gzip"
            response.headers["Vary"] = "Accept-Encoding"
        return response

    @staticmethod
    def _etag_matches(if_none_match: str | None, etag: str) -> bool:
        if not if_none_match:
            return False
        if if_none_match.strip() == "*":
            return True
        candidates = [c.strip() for c in if_none_match.split(",")]
        return etag in candidates

    @staticmethod
    def _accepts_gzip(request: HttpRequest) -> bool:
        return "gzip" in request.headers.get("Accept-Encoding", "")

    def _respond(self, outcome: ActionOutcome, request: HttpRequest,
                 session) -> HttpResponse:
        if outcome.kind == "redirect":
            path = self.controller.path_of_page(outcome.redirect_page_id)
            params = {
                k: _to_request_value(v)
                for k, v in outcome.redirect_params.items()
            }
            return HttpResponse.redirect(build_url(path, params))
        with span("mvc.render", tier="mvc"):
            body = self.view_renderer(
                outcome.page_result, request, self.controller
            )
        return HttpResponse(status=200, body=body)


def _to_request_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return ",".join(str(v) for v in value)
    return str(value)
