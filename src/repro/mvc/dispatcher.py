"""The front controller (the servlet of Figure 3).

Receives :class:`HttpRequest` objects, resolves the session, routes
through the Controller's action mappings, runs the action, and either
renders the resulting Model state through the pluggable view renderer or
emits a redirect.  Site views flagged ``requires_login`` are enforced
here, before any action runs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ControllerError, ReproError
from repro.mvc.actions import ActionOutcome, OperationAction, PageAction
from repro.mvc.controller import Controller
from repro.mvc.http import (
    HttpRequest,
    HttpResponse,
    SessionStore,
    build_url,
)
from repro.services import PageResult, RuntimeContext

#: view renderer signature: (page_result, request, controller) -> html
ViewRenderer = Callable[[PageResult, HttpRequest, Controller], str]


def plain_view_renderer(page_result: PageResult, request: HttpRequest,
                        controller: Controller) -> str:
    """A minimal fallback View (tests/benchmarks that skip presentation)."""
    lines = [f"<html><body><h1>{page_result.name}</h1>"]
    for bean in page_result.beans.values():
        lines.append(f"<div class='unit' id='{bean.unit_id}'>{bean.name}: "
                     f"{bean.row_count()} row(s)</div>")
    lines.append("</body></html>")
    return "".join(lines)


class FrontController:
    """The servlet: one instance serves every request of an application."""

    def __init__(
        self,
        controller: Controller,
        ctx: RuntimeContext,
        view_renderer: ViewRenderer | None = None,
    ):
        self.controller = controller
        self.ctx = ctx
        self.sessions = SessionStore()
        self.view_renderer = view_renderer or plain_view_renderer
        self.page_action = PageAction(ctx)
        self.operation_action = OperationAction(ctx)
        self.requests_served = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve one request; unexpected failures become 500 responses
        (a servlet container never lets an exception escape to the
        socket)."""
        try:
            return self._handle(request)
        except ReproError as exc:
            return HttpResponse(
                status=500,
                body=f"Internal error: {exc}",
                content_type="text/plain",
            )

    def _handle(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        session = self.sessions.get_or_create(request.session_id)
        request.session_id = session.id

        # "/" or "/<siteview>" land on the site view's home page.
        if request.path == "/" or (
            not self.controller.has_path(request.path)
            and request.path.count("/") == 1
        ):
            return self._home_redirect(request)

        try:
            mapping = self.controller.resolve(request.path)
        except ControllerError:
            return HttpResponse.not_found(request.path)

        home = self.controller.homes.get(mapping.site_view_id)
        if home is not None and home.requires_login and not session.is_authenticated:
            if not mapping.public and not self._is_login_operation(mapping):
                return HttpResponse.forbidden(
                    f"site view {mapping.site_view_id} requires login"
                )

        if mapping.action_type == "PageAction":
            outcome = self.page_action.perform(mapping, request, session)
        elif mapping.action_type == "OperationAction":
            outcome = self.operation_action.perform(mapping, request, session)
        else:
            raise ControllerError(f"unknown action type {mapping.action_type!r}")
        return self._respond(outcome, request, session)

    def _is_login_operation(self, mapping) -> bool:
        if mapping.action_type != "OperationAction":
            return False
        descriptor = self.ctx.registry.operation(mapping.operation_id)
        return descriptor.kind == "login"

    def _home_redirect(self, request: HttpRequest) -> HttpResponse:
        if request.path == "/":
            if not self.controller.homes:
                return HttpResponse.not_found("no site views configured")
            site_view_id = next(iter(self.controller.homes))
        else:
            site_view_id = request.path.strip("/")
        try:
            home = self.controller.home_for(site_view_id)
        except ControllerError:
            return HttpResponse.not_found(request.path)
        return HttpResponse.redirect(
            self.controller.page_path(site_view_id, home.page_id)
        )

    def _respond(self, outcome: ActionOutcome, request: HttpRequest,
                 session) -> HttpResponse:
        if outcome.kind == "redirect":
            path = self.controller.path_of_page(outcome.redirect_page_id)
            params = {
                k: _to_request_value(v)
                for k, v in outcome.redirect_params.items()
            }
            return HttpResponse.redirect(build_url(path, params))
        body = self.view_renderer(outcome.page_result, request, self.controller)
        return HttpResponse(status=200, body=body)


def _to_request_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return ",".join(str(v) for v in value)
    return str(value)
