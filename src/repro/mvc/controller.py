"""The Controller and its configuration.

§2: "a program acting as the Controller intercepts [the request] ...
decides the course of action necessary to service each request."  §3:
"the action mapping is a declaration placed in the Controller's
configuration file that ties together the user's request, the page
action, and the page view."

The Controller here is configured *only* from the generated XML
configuration (see :mod:`repro.codegen.configgen`) — exactly the
property §7 celebrates: re-linking the hypertext regenerates this file
and nothing else in the control layer changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControllerError
from repro.xmlkit import parse_xml


@dataclass
class ActionMapping:
    """One path→action declaration."""

    path: str
    action_type: str  # "PageAction" | "OperationAction"
    site_view_id: str
    page_id: str | None = None
    operation_id: str | None = None
    view: str | None = None
    public: bool = False  # reachable without login even in protected views
    forwards: dict = field(default_factory=dict)  # "ok"/"ko" → target element id


@dataclass
class HomeMapping:
    site_view_id: str
    page_id: str
    requires_login: bool = False


class Controller:
    """Request-path router built from the generated configuration."""

    def __init__(self) -> None:
        self.mappings: dict[str, ActionMapping] = {}
        self.homes: dict[str, HomeMapping] = {}
        self.application = ""

    @classmethod
    def from_config(cls, config_xml: str) -> "Controller":
        controller = cls()
        controller.load_config(config_xml)
        return controller

    def load_config(self, config_xml: str) -> None:
        """(Re)load the configuration — §7's re-link/regenerate cycle."""
        root = parse_xml(config_xml)
        if root.tag != "controllerConfig":
            raise ControllerError(
                f"expected <controllerConfig>, got <{root.tag}>"
            )
        self.application = root.get("application", "")
        mappings: dict[str, ActionMapping] = {}
        mappings_el = root.find("actionMappings")
        if mappings_el is not None:
            for action_el in mappings_el.find_all("action"):
                mapping = ActionMapping(
                    path=action_el.require_attr("path"),
                    action_type=action_el.require_attr("type"),
                    site_view_id=action_el.require_attr("siteview"),
                    page_id=action_el.get("page"),
                    operation_id=action_el.get("operation"),
                    view=action_el.get("view"),
                    public=action_el.get("public") == "true",
                )
                for forward_el in action_el.find_all("forward"):
                    mapping.forwards[forward_el.require_attr("name")] = {
                        "target": forward_el.require_attr("target"),
                        "page": forward_el.get("page"),
                    }
                if mapping.path in mappings:
                    raise ControllerError(f"duplicate action path {mapping.path!r}")
                mappings[mapping.path] = mapping
        homes: dict[str, HomeMapping] = {}
        homes_el = root.find("homePages")
        if homes_el is not None:
            for home_el in homes_el.find_all("home"):
                home = HomeMapping(
                    site_view_id=home_el.require_attr("siteview"),
                    page_id=home_el.require_attr("page"),
                    requires_login=home_el.get("requiresLogin") == "true",
                )
                homes[home.site_view_id] = home
        # Swap atomically so in-flight requests never see a half-loaded map.
        self.mappings = mappings
        self.homes = homes

    def resolve(self, path: str) -> ActionMapping:
        mapping = self.mappings.get(path)
        if mapping is None:
            raise ControllerError(f"no action mapping for path {path!r}")
        return mapping

    def has_path(self, path: str) -> bool:
        return path in self.mappings

    def home_for(self, site_view_id: str) -> HomeMapping:
        home = self.homes.get(site_view_id)
        if home is None:
            raise ControllerError(f"no home page for site view {site_view_id!r}")
        return home

    def page_path(self, site_view_id: str, page_id: str) -> str:
        return f"/{site_view_id}/{page_id}"

    def operation_path(self, operation_id: str) -> str:
        return f"/do/{operation_id}"

    def path_of_page(self, page_id: str) -> str:
        for path, mapping in self.mappings.items():
            if mapping.action_type == "PageAction" and mapping.page_id == page_id:
                return path
        raise ControllerError(f"no mapping serves page {page_id!r}")
