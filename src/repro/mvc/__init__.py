"""The MVC2 web tier (paper §2-§3, Figures 3-4).

- :mod:`repro.mvc.http` — the HTTP substrate: requests, responses,
  sessions (in-process; the architecture needs the protocol shape, not
  sockets),
- :mod:`repro.mvc.controller` — the Controller configured exclusively
  from the generated action-mapping file,
- :mod:`repro.mvc.actions` — page and operation action classes (the
  Model-side entry points the Controller invokes),
- :mod:`repro.mvc.dispatcher` — the front servlet tying them together.
"""

from repro.mvc.actions import ActionOutcome, OperationAction, PageAction
from repro.mvc.controller import ActionMapping, Controller
from repro.mvc.dispatcher import FrontController
from repro.mvc.http import HttpRequest, HttpResponse, Session, SessionStore

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "Session",
    "SessionStore",
    "Controller",
    "ActionMapping",
    "PageAction",
    "OperationAction",
    "ActionOutcome",
    "FrontController",
]
