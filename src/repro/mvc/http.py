"""HTTP substrate: requests, responses, sessions.

The paper's architecture runs over HTTP/servlets; the reproduction
models the protocol objects in-process.  Requests carry parameters,
headers (the ``User-Agent`` drives §5's multi-device rule selection) and
a session id; the :class:`SessionStore` provides the "session-level
information" (§1) that login units bind users into.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, quote, urlencode


@dataclass
class HttpRequest:
    """One client request."""

    path: str
    params: dict = field(default_factory=dict)
    method: str = "GET"
    headers: dict = field(default_factory=dict)
    session_id: str | None = None
    #: protocol version of the wire request; in-process requests keep
    #: the 1.1 default (keep-alive semantics live in repro.httpcore)
    http_version: str = "HTTP/1.1"

    @classmethod
    def from_url(cls, url: str, method: str = "GET",
                 headers: dict | None = None,
                 session_id: str | None = None) -> "HttpRequest":
        """Parse ``/path?a=1&b=2`` into a request.

        Repeated parameters (checkbox groups) become lists, single ones
        plain strings — the usual servlet-API behaviour.
        """
        path, _sep, query = url.partition("?")
        params: dict = {}
        for name, value in parse_qsl(query, keep_blank_values=True):
            if name in params:
                existing = params[name]
                if isinstance(existing, list):
                    existing.append(value)
                else:
                    params[name] = [existing, value]
            else:
                params[name] = value
        return cls(path=path, params=params, method=method,
                   headers=dict(headers or {}), session_id=session_id)

    def get(self, name: str, default=None):
        return self.params.get(name, default)

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "")


@dataclass
class HttpResponse:
    """One server response.

    ``encoded_body`` is the wire form when a ``Content-Encoding`` was
    negotiated (gzip); ``body`` always keeps the identity text, the way
    an in-process test client wants to read it.
    """

    status: int = 200
    body: str = ""
    content_type: str = "text/html"
    headers: dict = field(default_factory=dict)
    encoded_body: bytes | None = None
    #: the request's span tree when tracing is on (set by the front
    #: controller); in-process tests read it, the wire never carries it
    trace: object | None = None

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        return cls(status=302, headers={"Location": location})

    @classmethod
    def not_modified(cls, etag: str, headers: dict | None = None) -> "HttpResponse":
        """A 304 revalidation answer: no body, just the validator."""
        merged = dict(headers or {})
        merged["ETag"] = etag
        return cls(status=304, headers=merged)

    @classmethod
    def not_found(cls, what: str = "") -> "HttpResponse":
        return cls(status=404, body=f"Not found: {what}", content_type="text/plain")

    @classmethod
    def forbidden(cls, why: str = "login required") -> "HttpResponse":
        return cls(status=403, body=why, content_type="text/plain")

    @property
    def is_redirect(self) -> bool:
        return self.status in (301, 302, 303, 307, 308)

    @property
    def location(self) -> str | None:
        return self.headers.get("Location")

    @property
    def etag(self) -> str | None:
        return self.headers.get("ETag")

    @property
    def wire_length(self) -> int:
        """Bytes this response puts on the wire (304s carry none)."""
        if self.status == 304:
            return 0
        if self.encoded_body is not None:
            return len(self.encoded_body)
        return len(self.body.encode())


def build_url(path: str, params: dict | None = None) -> str:
    """Assemble a URL with properly encoded query parameters.

    List/tuple values (checkbox groups) expand doseq-style into one
    ``name=value`` pair per element, so a multi-select round-trips
    through :meth:`HttpRequest.from_url` unchanged.
    """
    if not params:
        return path
    encoded = urlencode(
        [(k, v) for k, v in params.items() if v is not None],
        quote_via=quote, doseq=True,
    )
    return f"{path}?{encoded}" if encoded else path


class Session:
    """Per-client conversational state (the paper's state objects that
    "persist between consecutive requests", §2).

    Mutations are lock-guarded: one user can have several in-flight
    requests (frames, retries) served by different worker threads.
    """

    def __init__(self, session_id: str):
        self.id = session_id
        self.attributes: dict = {}
        self.user_oid: int | None = None
        self.username: str | None = None
        self._lock = threading.RLock()

    @property
    def is_authenticated(self) -> bool:
        return self.user_oid is not None

    def login(self, user_oid: int, username: str) -> None:
        with self._lock:
            self.user_oid = user_oid
            self.username = username

    def logout(self) -> None:
        with self._lock:
            self.user_oid = None
            self.username = None
            self.attributes.clear()

    def get(self, name: str, default=None):
        with self._lock:
            return self.attributes.get(name, default)

    def set(self, name: str, value) -> None:
        with self._lock:
            self.attributes[name] = value


class SessionStore:
    """Creates and tracks sessions (a servlet container's session map).

    Thread-safe: two concurrent first requests with the same (or no)
    session id resolve to exactly one :class:`Session` object each."""

    def __init__(self) -> None:
        self._sessions: dict[str, Session] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()

    def get_or_create(self, session_id: str | None) -> Session:
        with self._lock:
            if session_id is not None and session_id in self._sessions:
                return self._sessions[session_id]
            new_id = session_id or f"s{next(self._ids)}"
            session = Session(new_id)
            self._sessions[new_id] = session
            return session

    def invalidate(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
