"""Action classes — the Model-side entry points (§2-§3).

"Each action class is a Java class wrapping a particular application
function": the :class:`PageAction` extracts the request input and calls
the page service; the :class:`OperationAction` runs an operation (or a
chain of operations linked OK→OK) and tells the Controller which forward
to take.  Actions never render markup — that is the View's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControllerError
from repro.mvc.controller import ActionMapping
from repro.mvc.http import HttpRequest, Session
from repro.services import (
    GenericOperationService,
    GenericPageService,
    PageResult,
    RuntimeContext,
)

#: safety bound on OK→operation chains (a modelling error otherwise)
MAX_OPERATION_CHAIN = 16


@dataclass
class ActionOutcome:
    """What the Controller should do after an action completes."""

    kind: str  # "view" | "redirect"
    page_result: PageResult | None = None
    view: str | None = None
    redirect_page_id: str | None = None
    redirect_params: dict = field(default_factory=dict)
    message: str | None = None


class PageAction:
    """Extract request parameters, invoke the page service, hand the
    computed Model state to the View."""

    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx
        self.page_service = GenericPageService(ctx)

    def perform(self, mapping: ActionMapping, request: HttpRequest,
                session: Session) -> ActionOutcome:
        descriptor = self.ctx.registry.page(mapping.page_id)
        params = dict(request.params)
        # Session state (the logged-in user) is visible to page inputs as
        # the pseudo request parameter "session.user".
        if session.is_authenticated:
            params.setdefault("session.user", session.user_oid)
        page_result = self.page_service.compute_page(descriptor, params)
        return ActionOutcome(
            kind="view", page_result=page_result, view=mapping.view
        )


class OperationAction:
    """Run the mapped operation, following OK→operation chains, then
    redirect to the outcome page (§3: operations contribute no view)."""

    def __init__(self, ctx: RuntimeContext):
        self.ctx = ctx
        self.operation_service = GenericOperationService(ctx)

    def perform(self, mapping: ActionMapping, request: HttpRequest,
                session: Session) -> ActionOutcome:
        operation_id = mapping.operation_id
        chain_inputs = self._request_inputs(operation_id, request)
        last_message = None

        for _hop in range(MAX_OPERATION_CHAIN):
            descriptor = self.ctx.registry.operation(operation_id)
            result = self.operation_service.execute(
                descriptor, chain_inputs, session
            )
            outcome = descriptor.ok if result.ok else descriptor.ko
            last_message = result.message
            if outcome is None:
                if result.ok:
                    raise ControllerError(
                        f"operation {descriptor.name!r} succeeded but has "
                        "no OK target"
                    )
                # No KO link: fall back to the OK target with the message.
                outcome = descriptor.ok
                if outcome is None:
                    raise ControllerError(
                        f"operation {descriptor.name!r} failed and has no "
                        "KO target"
                    )
            forwarded = {
                request_param: result.outputs.get(output)
                for output, request_param in outcome.parameters
            }
            if outcome.target_kind == "operation":
                # Chain: forwarded values become the next operation's slots,
                # merged under any request parameters addressed to it.
                operation_id = outcome.target_id
                chain_inputs = self._request_inputs(operation_id, request)
                chain_inputs.update(
                    {k: v for k, v in forwarded.items() if v is not None}
                )
                continue
            redirect_params = {
                k: v for k, v in forwarded.items() if v is not None
            }
            if last_message and not result.ok:
                redirect_params["_message"] = last_message
            return ActionOutcome(
                kind="redirect",
                redirect_page_id=outcome.target_page_id or outcome.target_id,
                redirect_params=redirect_params,
                message=last_message,
            )
        raise ControllerError(
            f"operation chain exceeded {MAX_OPERATION_CHAIN} hops "
            f"(cycle through {operation_id!r}?)"
        )

    @staticmethod
    def _request_inputs(operation_id: str, request: HttpRequest) -> dict:
        prefix = f"{operation_id}."
        return {
            name[len(prefix):]: value
            for name, value in request.params.items()
            if name.startswith(prefix)
        }
