"""repro — a reproduction of "Architectural Issues and Solutions in the
Development of Data-Intensive Web Applications" (Ceri, Fraternali et
al., CIDR 2003).

The library implements the WebRatio architecture the paper describes:
specify the data with an ER model and the hypertext with WebML, generate
the full application (relational schema, XML descriptors for generic
services, controller configuration, template skeletons), style it with
XSLT-like page/unit rules and modularized CSS, and serve it through an
MVC2 runtime with the paper's two-level cache.

Quickstart::

    from repro import ERModel, WebMLModel, WebApplication, Browser

    data = ERModel(name="demo")
    data.entity("Note", [("text", "VARCHAR(200)", True)])

    hypertext = WebMLModel(data, name="demo")
    page = hypertext.site_view("public").page("Notes", home=True)
    page.index_unit("All notes", "Note")

    app = WebApplication(hypertext)
    app.seed_entity("Note", [{"text": "hello WebML"}])
    print(Browser(app).get("/").status)

See ``examples/`` for full applications, DESIGN.md for the system map,
and EXPERIMENTS.md for the paper-vs-measured results.
"""

from repro.app import Browser, WebApplication
from repro.caching import FragmentCache, UnitBeanCache
from repro.codegen import (
    generate_conventional,
    generate_project,
)
from repro.er import Attribute, Cardinality, Entity, ERModel, Relationship
from repro.presentation import (
    DeviceRegistry,
    PresentationRenderer,
    Stylesheet,
    UnitRule,
)
from repro.presentation.renderer import default_stylesheet
from repro.rdb import Database
from repro.webml import (
    AttributeCondition,
    HierarchyLevel,
    KeyCondition,
    LinkKind,
    RelationshipCondition,
    Selector,
    WebMLModel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "ERModel", "Entity", "Attribute", "Relationship", "Cardinality",
    # hypertext model
    "WebMLModel", "Selector", "AttributeCondition", "KeyCondition",
    "RelationshipCondition", "HierarchyLevel", "LinkKind",
    # generation + runtime
    "generate_project", "generate_conventional", "WebApplication", "Browser",
    "Database",
    # presentation
    "PresentationRenderer", "Stylesheet", "UnitRule", "DeviceRegistry",
    "default_stylesheet",
    # caching
    "UnitBeanCache", "FragmentCache",
]
