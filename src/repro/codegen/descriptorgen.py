"""Descriptor generation.

Produces the unit/page/operation descriptors of §4 from the WebML model:
the unit descriptor wraps the generated SQL (see
:mod:`repro.codegen.sqlgen`), the page descriptor encodes the page's
dataflow topology (computation order + slot bindings) and its outgoing
navigation, and the operation descriptor encodes the DML plus the OK/KO
control flow.
"""

from __future__ import annotations

from repro.codegen.sqlgen import operation_statements, unit_queries
from repro.descriptors import (
    NavigationTarget,
    OperationDescriptor,
    OutcomeTarget,
    PageDescriptor,
    SlotBinding,
    UnitDescriptor,
)
from repro.er.mapping import RelationalMapping
from repro.errors import CodegenError
from repro.util import stable_topological_sort
from repro.webml.links import Link, LinkKind
from repro.webml.model import Page, WebMLModel
from repro.webml.operations import OperationUnit
from repro.webml.units import ContentUnit, EntryUnit, ScrollerUnit


def request_param_name(element_id: str, slot: str) -> str:
    """The canonical HTTP request parameter feeding ``element_id.slot``."""
    return f"{element_id}.{slot}"


def generate_unit_descriptor(unit: ContentUnit,
                             mapping: RelationalMapping) -> UnitDescriptor:
    from repro.services.plugins import plugin_registry

    plugin = plugin_registry.get(unit.kind)
    if plugin is not None and plugin.descriptor_builder is not None:
        # §7: the plug-in supplies "the XSL rules for building their
        # descriptors" — here, the descriptor builder itself.
        return plugin.descriptor_builder(unit, mapping)
    queries = unit_queries(unit, mapping)
    descriptor = UnitDescriptor(
        unit_id=unit.id,
        name=unit.name,
        kind=unit.kind,
        entity=unit.entity,
        query=queries["query"],
        count_query=queries["count_query"],
        inputs=queries["inputs"],
        properties=queries["properties"],
        levels=queries["levels"],
        cacheable=unit.cacheable,
        cache_policy=unit.cache_policy,
    )
    if isinstance(unit, ScrollerUnit):
        descriptor.block_size = unit.block_size
    if isinstance(unit, EntryUnit):
        descriptor.entry_fields = [
            {
                "name": f.name,
                "type": f.field_type,
                "required": "true" if f.required else "false",
                "label": f.label or f.name,
            }
            for f in unit.fields
        ]
    if unit.entity:
        descriptor.depends_on_entities = _entity_closure(unit, mapping)
    descriptor.depends_on_roles = list(unit.depends_on_roles)
    return descriptor


def _entity_closure(unit: ContentUnit, mapping: RelationalMapping) -> list[str]:
    """Entities whose content the unit's bean reflects (for §6 cache
    invalidation): the unit entity plus every hierarchy-level entity."""
    entities = [unit.entity]
    for level in getattr(unit, "levels", []):
        if level.entity not in entities:
            entities.append(level.entity)
    return entities


def generate_page_descriptor(model: WebMLModel, page: Page) -> PageDescriptor:
    view = model.site_view_of_page(page)
    unit_ids = [unit.id for unit in page.units]
    unit_set = set(unit_ids)

    # Intra-page dataflow: transport/automatic unit→unit links.
    dependencies: dict[str, list[str]] = {uid: [] for uid in unit_ids}
    intra_links: list[Link] = []
    for unit in page.units:
        for link in model.links_to(unit.id):
            if link.kind not in (LinkKind.TRANSPORT, LinkKind.AUTOMATIC):
                continue
            if link.source in unit_set:
                dependencies[unit.id].append(link.source)
                intra_links.append(link)
    order = stable_topological_sort(unit_ids, dependencies)

    descriptor = PageDescriptor(
        page_id=page.id,
        name=page.name,
        site_view_id=view.id,
        layout_category=page.layout_category,
        unit_order=order,
    )

    # Slot bindings: intra-page links win; everything else comes from the
    # HTTP request under the canonical parameter name.
    bound: set[tuple[str, str]] = set()
    for link in intra_links:
        for parameter in link.parameters:
            descriptor.bindings.append(
                SlotBinding(
                    unit_id=link.target,
                    slot=parameter.target_input,
                    source="unit",
                    source_unit_id=link.source,
                    source_output=parameter.source_output,
                )
            )
            bound.add((link.target, parameter.target_input))
    for unit in page.units:
        for slot in unit.input_slots:
            if (unit.id, slot) in bound:
                continue
            # Slots named "session.<key>" read the session pseudo-params
            # the page action injects (§1's session-level personalization,
            # e.g. a data unit keyed on "session.user").
            param = slot if slot.startswith("session.") \
                else request_param_name(unit.id, slot)
            descriptor.bindings.append(
                SlotBinding(
                    unit_id=unit.id,
                    slot=slot,
                    source="request",
                    request_param=param,
                )
            )

    # Navigation: normal links leaving this page's units (or the page).
    sources: list[tuple[str | None, object]] = [(None, page)]
    sources.extend((unit.id, unit) for unit in page.units)
    for source_unit_id, source in sources:
        for link in model.links_from(source.id):
            if link.kind != LinkKind.NORMAL:
                continue
            descriptor.navigation.append(
                _navigation_target(model, link, source_unit_id)
            )
    return descriptor


def _navigation_target(model: WebMLModel, link: Link,
                       source_unit_id: str | None) -> NavigationTarget:
    target = model.element(link.target)
    if isinstance(target, OperationUnit):
        return NavigationTarget(
            link_id=link.id,
            source_unit_id=source_unit_id,
            target_kind="operation",
            target_id=target.id,
            parameters=[
                (p.source_output, p.target_input) for p in link.parameters
            ],
            label=link.label,
        )
    if isinstance(target, ContentUnit):
        target_page = model.page_of_unit(target)
        return NavigationTarget(
            link_id=link.id,
            source_unit_id=source_unit_id,
            target_kind="page",
            target_id=target_page.id,
            target_page_id=target_page.id,
            parameters=[
                (p.source_output, request_param_name(target.id, p.target_input))
                for p in link.parameters
            ],
            label=link.label,
        )
    if isinstance(target, Page):
        return NavigationTarget(
            link_id=link.id,
            source_unit_id=source_unit_id,
            target_kind="page",
            target_id=target.id,
            target_page_id=target.id,
            parameters=[
                (p.source_output, p.target_input) for p in link.parameters
            ],
            label=link.label,
        )
    raise CodegenError(f"link {link.id} targets an unlinkable element")


def generate_operation_descriptor(
    model: WebMLModel, operation: OperationUnit, mapping: RelationalMapping
) -> OperationDescriptor:
    generated = operation_statements(operation, mapping)
    descriptor = OperationDescriptor(
        operation_id=operation.id,
        name=operation.name,
        kind=operation.kind,
        site_view_id=model.site_view_of_operation(operation).id,
        entity=getattr(operation, "entity", None),
        role=getattr(operation, "role", None),
        statements=generated["statements"],
        user_query=generated["user_query"],
        writes_entities=list(operation.writes_entities),
        writes_roles=list(operation.writes_roles),
    )
    for link in model.links_from(operation.id):
        if link.kind == LinkKind.OK:
            descriptor.ok = _outcome_target(model, link)
        elif link.kind == LinkKind.KO:
            descriptor.ko = _outcome_target(model, link)
    return descriptor


def _outcome_target(model: WebMLModel, link: Link) -> OutcomeTarget:
    target = model.element(link.target)
    if isinstance(target, OperationUnit):
        return OutcomeTarget(
            target_kind="operation",
            target_id=target.id,
            parameters=[
                (p.source_output, p.target_input) for p in link.parameters
            ],
        )
    if isinstance(target, ContentUnit):
        target_page = model.page_of_unit(target)
        return OutcomeTarget(
            target_kind="page",
            target_id=target_page.id,
            target_page_id=target_page.id,
            parameters=[
                (p.source_output, request_param_name(target.id, p.target_input))
                for p in link.parameters
            ],
        )
    if isinstance(target, Page):
        return OutcomeTarget(
            target_kind="page",
            target_id=target.id,
            target_page_id=target.id,
            parameters=[
                (p.source_output, p.target_input) for p in link.parameters
            ],
        )
    raise CodegenError(f"OK/KO link {link.id} targets an unlinkable element")
