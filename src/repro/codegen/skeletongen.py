"""Template skeleton generation.

§5 / Figure 7: the generator produces "a page template skeleton, which
includes all the custom tags corresponding to the units of the page, but
only the minimal HTML mark-up needed to define the layout grid of the
page and the position of the various units in such a grid."  XSLT-style
presentation rules later transform the skeleton into the final template.

The layout grid depends on the page's layout category (§5 suggests
classifying layouts — two-columns, three-columns, multi-frame...):
units are dealt into the grid's columns round-robin.
"""

from __future__ import annotations

from repro.errors import CodegenError
from repro.webml.model import Page
from repro.webml.units import ContentUnit
from repro.xmlkit import Element, serialize

#: columns per known layout category
LAYOUT_COLUMNS = {
    "one-column": 1,
    "two-columns": 2,
    "three-columns": 3,
    "multi-frame": 2,
}

#: custom tag per unit kind (the View half of each unit, §3)
UNIT_TAGS = {
    "data": "webml:dataUnit",
    "index": "webml:indexUnit",
    "multidata": "webml:multidataUnit",
    "multichoice": "webml:multichoiceUnit",
    "scroller": "webml:scrollerUnit",
    "entry": "webml:entryUnit",
    "hierarchical": "webml:hierarchicalUnit",
}


def unit_tag_for(unit: ContentUnit) -> str:
    try:
        return UNIT_TAGS[unit.kind]
    except KeyError:
        # Plug-in units (§7) register their tags at generation time.
        from repro.services.plugins import plugin_registry

        plugin = plugin_registry.get(unit.kind)
        if plugin is not None:
            return plugin.tag_name
        raise CodegenError(f"no custom tag for unit kind {unit.kind!r}") from None


def generate_page_skeleton(page: Page,
                           landmarks: list[tuple[str, str]] | None = None) -> str:
    """Build the skeleton markup for one page (an XML document whose
    custom tags the template engine resolves against unit beans).

    ``landmarks`` lists the site view's landmark pages as
    ``(page_id, label)`` pairs; when present, a ``webml:siteMenu`` tag
    is placed above the grid and resolved into navigation at render
    time.
    """
    columns = LAYOUT_COLUMNS.get(page.layout_category, 1)
    html = Element("html")
    head = html.add("head")
    head.add("title", text=page.name)
    body = html.add("body")
    if landmarks:
        menu = body.add("webml:siteMenu", {"current": page.id})
        for page_id, label in landmarks:
            menu.add("menuItem", {"page": page_id, "label": label})
    table = body.add("table", {"class": "page-grid", "data-page": page.id})

    rows: list[list[ContentUnit]] = []
    for position, unit in enumerate(page.units):
        if position % columns == 0:
            rows.append([])
        rows[-1].append(unit)

    for row_units in rows:
        row_el = table.add("tr")
        for unit in row_units:
            cell = row_el.add("td", {"class": "unit-cell"})
            cell.add(
                unit_tag_for(unit),
                {"unit": unit.id, "name": unit.name, "kind": unit.kind},
            )
        # Pad short rows so the grid stays rectangular.
        for _ in range(columns - len(row_units)):
            row_el.add("td", {"class": "unit-cell empty"})
    return serialize(html)
