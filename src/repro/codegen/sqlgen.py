"""SQL generation.

Turns WebML units into data-extraction queries and operation units into
DML statements, using the :class:`~repro.er.mapping.RelationalMapping`
as the single source of truth for tables, columns, and join paths.
Generated queries always alias the unit's entity table ``t0`` and use
named parameters matching the unit's input slots, so the descriptors can
bind link-supplied values positionlessly.
"""

from __future__ import annotations

from repro.descriptors import (
    BeanProperty,
    InputParameter,
    LevelQuery,
    StatementSpec,
)
from repro.er.mapping import RelationalMapping
from repro.errors import CodegenError
from repro.webml.operations import (
    ConnectUnit,
    CreateUnit,
    DeleteUnit,
    DisconnectUnit,
    LoginUnit,
    LogoutUnit,
    ModifyUnit,
    OperationUnit,
)
from repro.webml.selectors import (
    AttributeCondition,
    KeyCondition,
    RelationshipCondition,
)
from repro.webml.units import ContentUnit, EntryUnit, HierarchicalIndexUnit


def sql_literal(value) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _display_attributes(unit_entity: str, declared: list[str],
                        mapping: RelationalMapping) -> list[str]:
    if declared:
        return list(declared)
    entity = mapping.model.entity(unit_entity)
    return entity.attribute_names


def _select_list(entity: str, attributes: list[str],
                 mapping: RelationalMapping, alias: str = "t0") -> tuple[str, list[BeanProperty]]:
    entity_map = mapping.entity_map(entity)
    pieces = [f"{alias}.oid AS oid"]
    properties = [BeanProperty("oid", "oid")]
    for attribute in attributes:
        if attribute == "oid":
            continue
        column = entity_map.column_for(attribute)
        pieces.append(f"{alias}.{column} AS {attribute}")
        properties.append(BeanProperty(attribute, attribute))
    return ", ".join(pieces), properties



def _sql_param(slot: str) -> str:
    """SQL parameter name for a unit input slot (slots like
    ``session.user`` need sanitizing for the :name syntax)."""
    from repro.util import make_identifier

    return make_identifier(slot) if "." in slot else slot


class _QueryBuilder:
    """Accumulates joins/conditions for one unit query."""

    def __init__(self, entity: str, mapping: RelationalMapping):
        self.mapping = mapping
        self.entity = entity
        self.table = mapping.table_for(entity)
        self.joins: list[str] = []
        self.where: list[str] = []
        self.inputs: list[InputParameter] = []
        self._alias_counter = 0

    def _next_alias(self) -> str:
        self._alias_counter += 1
        return f"r{self._alias_counter}"

    def add_condition(self, condition) -> None:
        if isinstance(condition, KeyCondition):
            sql_param = _sql_param(condition.parameter)
            self.where.append(f"t0.oid = :{sql_param}")
            self.inputs.append(
                InputParameter(condition.parameter, sql_param,
                               value_type="int")
            )
        elif isinstance(condition, AttributeCondition):
            self._add_attribute_condition(condition)
        elif isinstance(condition, RelationshipCondition):
            self._add_role_condition(condition)
        else:  # pragma: no cover - defensive
            raise CodegenError(f"unknown selector condition {condition!r}")

    def _add_attribute_condition(self, condition: AttributeCondition) -> None:
        column = self.mapping.entity_map(self.entity).column_for(
            condition.attribute
        )
        operator = condition.operator.upper() if condition.operator == "like" \
            else condition.operator
        if condition.parameter is not None:
            sql_param = _sql_param(condition.parameter)
            self.where.append(f"t0.{column} {operator} :{sql_param}")
            self.inputs.append(
                InputParameter(
                    condition.parameter,
                    sql_param,
                    match="contains" if condition.operator == "like" else "exact",
                    value_type=_value_type_of(self.mapping, self.entity,
                                              condition.attribute),
                )
            )
        elif condition.value is None and condition.operator == "=":
            self.where.append(f"t0.{column} IS NULL")
        else:
            self.where.append(
                f"t0.{column} {operator} {sql_literal(condition.value)}"
            )

    def _add_role_condition(self, condition: RelationshipCondition) -> None:
        """The unit publishes role-*target* instances given a role-*source*
        oid parameter."""
        rel_map, forward = self.mapping.relationship_map(condition.role)
        parameter = _sql_param(condition.parameter)
        if rel_map.kind == "bridge":
            alias = self._next_alias()
            near = rel_map.target_column if forward else rel_map.source_column
            far = rel_map.source_column if forward else rel_map.target_column
            self.joins.append(
                f"JOIN {rel_map.bridge_table} {alias} ON {alias}.{near} = t0.oid"
            )
            self.where.append(f"{alias}.{far} = :{parameter}")
        else:
            to_entity = rel_map.target_entity if forward else rel_map.source_entity
            fk_on_unit_side = rel_map.fk_table == self.mapping.table_for(to_entity)
            if fk_on_unit_side:
                self.where.append(f"t0.{rel_map.fk_column} = :{parameter}")
            else:
                alias = self._next_alias()
                self.joins.append(
                    f"JOIN {rel_map.fk_table} {alias} "
                    f"ON {alias}.{rel_map.fk_column} = t0.oid"
                )
                self.where.append(f"{alias}.oid = :{parameter}")
        self.inputs.append(InputParameter(condition.parameter, parameter,
                                          value_type="int"))

    def build(self, select_list: str, order_by: list[tuple[str, bool]]) -> str:
        parts = [f"SELECT {select_list}", f"FROM {self.table} t0"]
        parts.extend(self.joins)
        if self.where:
            parts.append("WHERE " + " AND ".join(self.where))
        parts.append("ORDER BY " + self._order_clause(order_by))
        return " ".join(parts)

    def build_count(self) -> str:
        parts = ["SELECT COUNT(*) AS total", f"FROM {self.table} t0"]
        parts.extend(self.joins)
        if self.where:
            parts.append("WHERE " + " AND ".join(self.where))
        return " ".join(parts)

    def _order_clause(self, order_by: list[tuple[str, bool]]) -> str:
        if not order_by:
            return "t0.oid"
        entity_map = self.mapping.entity_map(self.entity)
        pieces = []
        for attribute, descending in order_by:
            column = entity_map.column_for(attribute)
            pieces.append(f"t0.{column} {'DESC' if descending else 'ASC'}")
        return ", ".join(pieces)


def unit_queries(unit: ContentUnit, mapping: RelationalMapping) -> dict:
    """Generate the queries for one content unit.

    Returns a dict with keys ``query``, ``count_query``, ``inputs``,
    ``properties`` and ``levels`` (the latter only for hierarchical
    units).  Entry units return an empty spec (no data extraction).
    """
    if isinstance(unit, EntryUnit) or unit.entity is None:
        # Entry units and entity-less plug-in units extract no data.
        return {"query": None, "count_query": None, "inputs": [],
                "properties": [], "levels": []}
    if isinstance(unit, HierarchicalIndexUnit):
        return _hierarchical_queries(unit, mapping)

    attributes = _display_attributes(unit.entity, unit.display_attributes, mapping)
    select_list, properties = _select_list(unit.entity, attributes, mapping)
    builder = _QueryBuilder(unit.entity, mapping)
    for condition in (unit.selector.conditions if unit.selector else []):
        builder.add_condition(condition)
    order_by = getattr(unit, "order_by", [])
    query = builder.build(select_list, order_by)
    count_query = builder.build_count() if unit.kind == "scroller" else None
    return {
        "query": query,
        "count_query": count_query,
        "inputs": builder.inputs,
        "properties": properties,
        "levels": [],
    }


def _hierarchical_queries(unit: HierarchicalIndexUnit,
                          mapping: RelationalMapping) -> dict:
    levels: list[LevelQuery] = []
    root_inputs: list[InputParameter] = []
    root_query = None
    root_properties: list[BeanProperty] = []
    for position, level in enumerate(unit.levels):
        attributes = _display_attributes(
            level.entity, level.display_attributes, mapping
        )
        select_list, properties = _select_list(level.entity, attributes, mapping)
        builder = _QueryBuilder(level.entity, mapping)
        if position == 0:
            for condition in (unit.selector.conditions if unit.selector else []):
                builder.add_condition(condition)
            root_query = builder.build(select_list, level.order_by)
            root_inputs = builder.inputs
            root_properties = properties
            continue
        builder.add_condition(
            RelationshipCondition(level.role, parameter="parent")
        )
        levels.append(
            LevelQuery(
                entity=level.entity,
                query=builder.build(select_list, level.order_by),
                properties=properties,
            )
        )
    return {
        "query": root_query,
        "count_query": None,
        "inputs": root_inputs,
        "properties": root_properties,
        "levels": levels,
    }


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


def operation_statements(operation: OperationUnit,
                         mapping: RelationalMapping) -> dict:
    """Generate the DML for one operation unit.

    Returns ``{"statements": [StatementSpec...], "user_query": str|None}``.
    """
    if isinstance(operation, CreateUnit):
        return {"statements": [_create_statement(operation, mapping)],
                "user_query": None}
    if isinstance(operation, DeleteUnit):
        table = mapping.table_for(operation.entity)
        return {
            "statements": [
                StatementSpec(
                    sql=f"DELETE FROM {table} WHERE oid = :oid",
                    params=[("oid", "oid", "int")],
                )
            ],
            "user_query": None,
        }
    if isinstance(operation, ModifyUnit):
        entity_map = mapping.entity_map(operation.entity)
        assignments = ", ".join(
            f"{entity_map.column_for(attribute)} = :{attribute}"
            for attribute in operation.attributes
        )
        return {
            "statements": [
                StatementSpec(
                    sql=(
                        f"UPDATE {entity_map.table} SET {assignments} "
                        "WHERE oid = :oid"
                    ),
                    params=[("oid", "oid", "int")]
                    + [(a, a, "auto") for a in operation.attributes],
                )
            ],
            "user_query": None,
        }
    if isinstance(operation, ConnectUnit):
        return {"statements": [_connect_statement(operation.role, mapping,
                                                  disconnect=False)],
                "user_query": None}
    if isinstance(operation, DisconnectUnit):
        return {"statements": [_connect_statement(operation.role, mapping,
                                                  disconnect=True)],
                "user_query": None}
    if isinstance(operation, LoginUnit):
        entity_map = mapping.entity_map(operation.user_entity)
        username_col = entity_map.column_for(operation.username_attribute)
        password_col = entity_map.column_for(operation.password_attribute)
        return {
            "statements": [],
            "user_query": (
                f"SELECT oid AS oid FROM {entity_map.table} "
                f"WHERE {username_col} = :username "
                f"AND {password_col} = :password"
            ),
        }
    if isinstance(operation, LogoutUnit):
        return {"statements": [], "user_query": None}
    raise CodegenError(f"no SQL generation for operation kind {operation.kind!r}")


def _create_statement(operation: CreateUnit,
                      mapping: RelationalMapping) -> StatementSpec:
    entity_map = mapping.entity_map(operation.entity)
    attributes = operation.attributes or [
        a.name for a in mapping.model.entity(operation.entity).attributes
    ]
    columns = ", ".join(entity_map.column_for(a) for a in attributes)
    placeholders = ", ".join(f":{a}" for a in attributes)
    return StatementSpec(
        sql=f"INSERT INTO {entity_map.table} ({columns}) VALUES ({placeholders})",
        params=[(a, a, "auto") for a in attributes],
        captures_new_oid=True,
    )


def _connect_statement(role: str, mapping: RelationalMapping,
                       disconnect: bool) -> StatementSpec:
    spec = mapping.connection_write(role)
    from_entity, _to_entity = mapping.role_endpoints(role)
    if spec["kind"] == "bridge":
        if spec["forward"]:
            source_slot, target_slot = "source_oid", "target_oid"
        else:
            source_slot, target_slot = "target_oid", "source_oid"
        if disconnect:
            sql = (
                f"DELETE FROM {spec['table']} "
                f"WHERE {spec['source_column']} = :{source_slot} "
                f"AND {spec['target_column']} = :{target_slot}"
            )
        else:
            sql = (
                f"INSERT INTO {spec['table']} "
                f"({spec['source_column']}, {spec['target_column']}) "
                f"VALUES (:{source_slot}, :{target_slot})"
            )
        return StatementSpec(
            sql=sql,
            params=[(source_slot, source_slot, "int"),
                    (target_slot, target_slot, "int")],
        )
    # FK realization: the owner row points at the other endpoint.
    owner_is_from_side = spec["owner_entity"] == from_entity
    owner_slot = "source_oid" if owner_is_from_side else "target_oid"
    other_slot = "target_oid" if owner_is_from_side else "source_oid"
    if disconnect:
        sql = (
            f"UPDATE {spec['table']} SET {spec['column']} = NULL "
            f"WHERE oid = :{owner_slot} AND {spec['column']} = :{other_slot}"
        )
    else:
        sql = (
            f"UPDATE {spec['table']} SET {spec['column']} = :{other_slot} "
            f"WHERE oid = :{owner_slot}"
        )
    return StatementSpec(
        sql=sql,
        params=[(owner_slot, owner_slot, "int"),
                (other_slot, other_slot, "int")],
    )

def _value_type_of(mapping: RelationalMapping, entity: str, attribute: str) -> str:
    """Coercion hint for a parameter compared against an attribute."""
    from repro.rdb.types import BooleanType, FloatType, IntegerType

    declared = mapping.model.entity(entity).attribute(attribute)
    from repro.rdb.types import type_from_name

    sql_type = type_from_name(declared.type_name)
    if isinstance(sql_type, IntegerType):
        return "int"
    if isinstance(sql_type, FloatType):
        return "float"
    if isinstance(sql_type, BooleanType):
        return "bool"
    return "auto"
