"""Code generators.

WebRatio's "customisable code generators" (§1) transform the ER model
into relational DDL and the WebML model into the runtime artifacts:

- :mod:`repro.codegen.sqlgen` — per-unit data-extraction queries and
  per-operation DML,
- :mod:`repro.codegen.descriptorgen` — unit/page/operation descriptors
  (the generic-service architecture of §4),
- :mod:`repro.codegen.configgen` — the controller configuration from the
  hypertext topology (§7: regenerated whenever pages are re-linked),
- :mod:`repro.codegen.skeletongen` — page template skeletons for the
  presentation pipeline (§5),
- :mod:`repro.codegen.conventional` — the baseline generator emitting
  one dedicated service class per page and per unit (what §4 argues
  against; used by experiments E2/E9),
- :mod:`repro.codegen.generator` — the facade generating a whole
  deployable project.
"""

from repro.codegen.configgen import generate_controller_config
from repro.codegen.conventional import ConventionalProject, generate_conventional
from repro.codegen.descriptorgen import (
    generate_operation_descriptor,
    generate_page_descriptor,
    generate_unit_descriptor,
)
from repro.codegen.generator import GeneratedProject, generate_project
from repro.codegen.skeletongen import generate_page_skeleton
from repro.codegen.sqlgen import operation_statements, unit_queries

__all__ = [
    "unit_queries",
    "operation_statements",
    "generate_unit_descriptor",
    "generate_page_descriptor",
    "generate_operation_descriptor",
    "generate_controller_config",
    "generate_page_skeleton",
    "generate_project",
    "GeneratedProject",
    "generate_conventional",
    "ConventionalProject",
]
