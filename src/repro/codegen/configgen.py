"""Controller configuration generation.

§7: "in the MVC architecture the configuration file of the Controller,
which centralizes the control logic of the application, quickly becomes
unmanageable when the application size increases; in WebRatio, it is
automatically generated from the topology of the hypertext ... The
developer re-links the pages in the WebML diagram and the code generator
re-builds the new configuration file."

The generated document is a struts-config-style XML file mapping request
paths to page/operation actions, with the forwards (OK/KO, navigation
targets) resolved from the link topology.  The runtime Controller is
configured exclusively from this artifact.
"""

from __future__ import annotations

from repro.webml.links import LinkKind
from repro.webml.model import WebMLModel
from repro.xmlkit import Element, pretty_print


def page_path(site_view_id: str, page_id: str) -> str:
    return f"/{site_view_id}/{page_id}"


def operation_path(operation_id: str) -> str:
    return f"/do/{operation_id}"


def _hosts_login_form(model: WebMLModel, page) -> bool:
    """A page whose units feed a login operation must stay public."""
    from repro.webml.operations import LoginUnit

    for unit in page.units:
        for link in model.links_from(unit.id):
            if isinstance(model.element(link.target), LoginUnit):
                return True
    return False


def generate_controller_config(model: WebMLModel) -> str:
    """Render the action-mapping configuration for the whole model."""
    root = Element("controllerConfig", {"application": model.name})
    mappings = root.add("actionMappings")
    for view in model.site_views:
        for page in view.all_pages():
            mapping = mappings.add(
                "action",
                {
                    "path": page_path(view.id, page.id),
                    "type": "PageAction",
                    "page": page.id,
                    "siteview": view.id,
                },
            )
            mapping.set("view", f"templates/{page.id}.jsp")
            if _hosts_login_form(model, page):
                # Login pages stay reachable in protected site views.
                mapping.set("public", "true")
        for operation in view.operations:
            mapping = mappings.add(
                "action",
                {
                    "path": operation_path(operation.id),
                    "type": "OperationAction",
                    "operation": operation.id,
                    "siteview": view.id,
                },
            )
            for link in model.links_from(operation.id):
                if link.kind not in (LinkKind.OK, LinkKind.KO):
                    continue
                forward = mapping.add(
                    "forward", {"name": link.kind.value, "target": link.target}
                )
                target = model.element(link.target)
                from repro.webml.units import ContentUnit

                if isinstance(target, ContentUnit):
                    forward.set("page", model.page_of_unit(target).id)
    homes = root.add("homePages")
    for view in model.site_views:
        if view.home_page_id:
            homes.add(
                "home",
                {
                    "siteview": view.id,
                    "page": view.home_page_id,
                    "requiresLogin": "true" if view.requires_login else "false",
                },
            )
    return pretty_print(root)
