"""The conventional (baseline) generator — one dedicated class per unit
and per page.

§4: "Every unit and operation requires a dedicated service in the
business tier ... All the services of individual units of the same kind
are very similar, because they differ only for the details of the data
retrieval or update query ... However, this similarity is not exploited
to reduce the amount of code to build and maintain."

This module *is* that unexploited-similarity architecture: it emits one
self-contained Python class per content unit (query and bean packing
inlined) and one per page (parameter propagation inlined), exactly the
artifact population §8 counts (556 page classes + 3068 unit classes for
Acer-Euro).  The sources are real code — ``instantiate()`` compiles them
and the resulting runtime serves pages, so experiments E2 (artifact
counts/LoC) and E9 (runtime overhead of genericity) compare two live
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.descriptorgen import (
    generate_page_descriptor,
    generate_unit_descriptor,
)
from repro.descriptors import PageDescriptor, UnitDescriptor
from repro.er.mapping import RelationalMapping, map_to_relational
from repro.errors import CodegenError
from repro.services.beans import UnitBean
from repro.services.page_service import PageResult
from repro.util import snake_to_camel
from repro.webml.model import WebMLModel


def _class_name(prefix: str, element_id: str) -> str:
    return f"{prefix}{snake_to_camel(element_id)}Service"


# ---------------------------------------------------------------------------
# Unit class emission
# ---------------------------------------------------------------------------


def _emit_input_lines(descriptor: UnitDescriptor, out: list[str]) -> None:
    """Inline input coercion — repeated verbatim in every dedicated class."""
    out.append("        params = dict(inputs)")
    for parameter in descriptor.inputs:
        slot = parameter.slot
        out.append(f"        value = inputs.get({slot!r})")
        out.append("        if value is None or value == '':")
        if parameter.required:
            out.append(f"            return UnitBean({descriptor.unit_id!r}, "
                       f"{descriptor.name!r}, {descriptor.kind!r})")
        else:
            out.append("            value = None")
        if parameter.value_type == "int":
            out.append("        if value is not None:")
            out.append("            value = int(str(value))")
        elif parameter.value_type == "float":
            out.append("        if value is not None:")
            out.append("            value = float(value)")
        if parameter.match == "contains":
            out.append("        if value is not None:")
            out.append("            value = '%' + str(value) + '%'")
        out.append(f"        params[{parameter.sql_param!r}] = value")


def _emit_projection(properties) -> str:
    pairs = ", ".join(f"{p.name!r}: row.get({p.column!r})" for p in properties)
    return "{" + pairs + "}"


def generate_unit_class(descriptor: UnitDescriptor) -> str:
    """Emit the dedicated service class source for one unit."""
    name = _class_name("Unit", descriptor.unit_id)
    out = [
        f"class {name}:",
        f"    \"\"\"Dedicated service for unit {descriptor.name!r} "
        f"({descriptor.kind}).\"\"\"",
        "",
        f"    UNIT_ID = {descriptor.unit_id!r}",
        "",
        "    def compute(self, ctx, inputs):",
    ]
    kind = descriptor.kind
    bean_args = f"{descriptor.unit_id!r}, {descriptor.name!r}, {kind!r}"

    if kind == "entry":
        out.append(f"        bean = UnitBean({bean_args})")
        out.append(f"        field_specs = {descriptor.entry_fields!r}")
        out.append("        for spec in field_specs:")
        out.append("            value = inputs.get(spec['name'], '')")
        out.append("            bean.fields.append({**spec, 'value': value})")
        out.append("            bean.outputs[spec['name']] = "
                   "inputs.get(spec['name'])")
        out.append("        return bean")
        return "\n".join(out) + "\n"

    _emit_input_lines(descriptor, out)
    out.append(f"        bean = UnitBean({bean_args})")

    if kind == "data":
        out.append(f"        rows = ctx.query({descriptor.query!r}, params)")
        out.append("        first = rows.first()")
        out.append("        if first is not None:")
        out.append("            bean.current = "
                   + _emit_projection(descriptor.properties).replace("row.", "first."))
        out.append("            bean.outputs = dict(bean.current)")
    elif kind in ("index", "multichoice", "multidata"):
        out.append(f"        result = ctx.query({descriptor.query!r}, params)")
        out.append("        bean.rows = ["
                   + _emit_projection(descriptor.properties)
                   + " for row in result]")
        if kind == "index":
            out.append("        selected = inputs.get('selected')")
            out.append("        current = None")
            out.append("        if selected is not None:")
            out.append("            current = next((r for r in bean.rows "
                       "if r.get('oid') == selected), None)")
            out.append("        if current is None and bean.rows:")
            out.append("            current = bean.rows[0]")
            out.append("        if current is not None:")
            out.append("            bean.outputs['oid'] = current.get('oid')")
        elif kind == "multichoice":
            out.append("        bean.outputs['oids'] = inputs.get('oids') or []")
    elif kind == "scroller":
        block_size = descriptor.block_size or 10
        out.append("        query_params = {k: v for k, v in params.items() "
                   "if k != 'block'}")
        out.append(f"        total = ctx.query({descriptor.count_query!r}, "
                   "query_params).scalar() or 0")
        out.append(f"        block_count = max(1, -(-total // {block_size}))")
        out.append("        block = inputs.get('block') or 1")
        out.append("        block = max(1, min(int(block), block_count))")
        out.append(f"        offset = (block - 1) * {block_size}")
        out.append(f"        paged = {descriptor.query!r} "
                   f"+ ' LIMIT {block_size} OFFSET ' + str(offset)")
        out.append("        result = ctx.query(paged, query_params)")
        out.append("        bean.rows = ["
                   + _emit_projection(descriptor.properties)
                   + " for row in result]")
        out.append("        bean.total = total")
        out.append("        bean.block = block")
        out.append("        bean.block_count = block_count")
        out.append("        bean.outputs = {'block': block, "
                   "'block_count': block_count}")
    elif kind == "hierarchical":
        out.append(f"        result = ctx.query({descriptor.query!r}, params)")
        out.append("        bean.rows = ["
                   + _emit_projection(descriptor.properties)
                   + " for row in result]")
        indent = "        "
        rows_var = "bean.rows"
        for depth, level in enumerate(descriptor.levels):
            row_var = f"row{depth}"
            out.append(f"{indent}for {row_var} in {rows_var}:")
            indent += "    "
            out.append(f"{indent}children = ctx.query({level.query!r}, "
                       f"{{'parent': {row_var}['oid']}})")
            out.append(f"{indent}{row_var}['_children'] = ["
                       + _emit_projection(level.properties)
                       + " for row in children]")
            rows_var = f"{row_var}['_children']"
        out.append("        if bean.rows:")
        out.append("            bean.outputs['oid'] = bean.rows[0].get('oid')")
    else:
        raise CodegenError(
            f"conventional generator: unsupported unit kind {kind!r}"
        )
    out.append("        return bean")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Page class emission
# ---------------------------------------------------------------------------


def generate_page_class(descriptor: PageDescriptor) -> str:
    """Emit the dedicated page-service class source for one page."""
    name = _class_name("Page", descriptor.page_id)
    out = [
        f"class {name}:",
        f"    \"\"\"Dedicated page service for {descriptor.name!r}.\"\"\"",
        "",
        f"    PAGE_ID = {descriptor.page_id!r}",
        "",
        "    def compute_page(self, ctx, unit_services, request_params):",
        f"        result = PageResult({descriptor.page_id!r}, "
        f"{descriptor.name!r})",
        "        beans = result.beans",
    ]
    for unit_id in descriptor.unit_order:
        out.append(f"        # unit {unit_id}")
        out.append("        inputs = {}")
        for binding in descriptor.bindings_for(unit_id):
            if binding.source == "request":
                out.append(f"        value = request_params.get("
                           f"{binding.request_param!r})")
            else:
                out.append(
                    f"        source = beans.get({binding.source_unit_id!r})"
                )
                out.append(
                    "        value = source.output("
                    f"{binding.source_output!r}) if source else None"
                )
            out.append("        if value is not None:")
            out.append(f"            inputs[{binding.slot!r}] = value")
        for control in ("selected", "block", "oids"):
            out.append(
                f"        if {unit_id + '.' + control!r} in request_params:"
            )
            out.append(
                f"            inputs[{control!r}] = _coerce_control("
                f"{control!r}, request_params[{unit_id + '.' + control!r}])"
            )
        out.append(
            f"        beans[{unit_id!r}] = unit_services[{unit_id!r}]"
            ".compute(ctx, inputs)"
        )
    out.append("        return result")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Project bundle
# ---------------------------------------------------------------------------


@dataclass
class ConventionalProject:
    """The generated dedicated-class code base."""

    files: dict[str, str] = field(default_factory=dict)
    unit_classes: dict[str, str] = field(default_factory=dict)  # unit_id → class
    page_classes: dict[str, str] = field(default_factory=dict)  # page_id → class

    def total_loc(self) -> int:
        return sum(source.count("\n") for source in self.files.values())

    def class_count(self) -> dict[str, int]:
        return {
            "unit_service_classes": len(self.unit_classes),
            "page_service_classes": len(self.page_classes),
        }

    def instantiate(self) -> "ConventionalRuntime":
        """Compile every generated source and build a live runtime."""
        namespace = {
            "UnitBean": UnitBean,
            "PageResult": PageResult,
            "_coerce_control": _coerce_control,
        }
        for path, source in self.files.items():
            code = compile(source, path, "exec")
            exec(code, namespace)  # noqa: S102 - generated by us, by design
        unit_services = {
            unit_id: namespace[class_name]()
            for unit_id, class_name in self.unit_classes.items()
        }
        page_services = {
            page_id: namespace[class_name]()
            for page_id, class_name in self.page_classes.items()
        }
        return ConventionalRuntime(unit_services, page_services)


def _coerce_control(control: str, value):
    from repro.services.page_service import _coerce_control as impl

    return impl(control, value)


class ConventionalRuntime:
    """Serves pages through the dedicated classes (no descriptors)."""

    def __init__(self, unit_services: dict, page_services: dict):
        self.unit_services = unit_services
        self.page_services = page_services

    def compute_page(self, page_id: str, ctx, request_params: dict) -> PageResult:
        page_service = self.page_services[page_id]
        return page_service.compute_page(ctx, self.unit_services, request_params)


def generate_conventional(model: WebMLModel,
                          mapping: RelationalMapping | None = None,
                          validate: bool = True) -> ConventionalProject:
    """Run the baseline generator over a model."""
    if validate:
        model.validate()
    if mapping is None:
        mapping = map_to_relational(model.data_model)
    project = ConventionalProject()
    for page in model.all_pages():
        page_descriptor = generate_page_descriptor(model, page)
        class_name = _class_name("Page", page.id)
        project.page_classes[page.id] = class_name
        project.files[f"src/pages/{class_name}.py"] = generate_page_class(
            page_descriptor
        )
        for unit in page.units:
            unit_descriptor = generate_unit_descriptor(unit, mapping)
            unit_class = _class_name("Unit", unit.id)
            project.unit_classes[unit.id] = unit_class
            project.files[f"src/units/{unit_class}.py"] = generate_unit_class(
                unit_descriptor
            )
    return project
