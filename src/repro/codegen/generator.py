"""Whole-project generation.

``generate_project`` runs every generator over a validated WebML model
and bundles the artifacts the way a WebRatio deployment would lay them
out: relational DDL, XML descriptors, the controller configuration, and
one template skeleton per page.  The bundle deploys into a
:class:`~repro.descriptors.DescriptorRegistry` (honouring §6's
optimized-descriptor preservation on regeneration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.codegen.configgen import generate_controller_config
from repro.codegen.descriptorgen import (
    generate_operation_descriptor,
    generate_page_descriptor,
    generate_unit_descriptor,
)
from repro.codegen.skeletongen import generate_page_skeleton
from repro.descriptors import (
    DescriptorRegistry,
    OperationDescriptor,
    PageDescriptor,
    UnitDescriptor,
)
from repro.er.mapping import RelationalMapping, map_to_relational
from repro.webml.model import WebMLModel


@dataclass
class GeneratedProject:
    """Everything the generators produced for one application."""

    model: WebMLModel
    mapping: RelationalMapping
    ddl: list[str] = field(default_factory=list)
    unit_descriptors: list[UnitDescriptor] = field(default_factory=list)
    page_descriptors: list[PageDescriptor] = field(default_factory=list)
    operation_descriptors: list[OperationDescriptor] = field(default_factory=list)
    controller_config: str = ""
    skeletons: dict[str, str] = field(default_factory=dict)  # page_id → xml
    generation_seconds: float = 0.0

    def deploy(self, registry: DescriptorRegistry) -> dict[str, int]:
        """Deploy all descriptors; returns preserved-descriptor counts."""
        preserved_units = 0
        for descriptor in self.unit_descriptors:
            if not registry.deploy_unit(descriptor):
                preserved_units += 1
        for descriptor in self.page_descriptors:
            registry.deploy_page(descriptor)
        preserved_operations = 0
        for descriptor in self.operation_descriptors:
            if not registry.deploy_operation(descriptor):
                preserved_operations += 1
        return {
            "preserved_units": preserved_units,
            "preserved_operations": preserved_operations,
        }

    def as_files(self) -> dict[str, str]:
        """The on-disk layout of the generated artifacts."""
        files: dict[str, str] = {
            "sql/schema.sql": ";\n\n".join(self.ddl) + ";\n",
            "conf/controller-config.xml": self.controller_config,
        }
        for descriptor in self.unit_descriptors:
            files[f"descriptors/units/{descriptor.unit_id}.xml"] = descriptor.to_xml()
        for descriptor in self.page_descriptors:
            files[f"descriptors/pages/{descriptor.page_id}.xml"] = descriptor.to_xml()
        for descriptor in self.operation_descriptors:
            files[
                f"descriptors/operations/{descriptor.operation_id}.xml"
            ] = descriptor.to_xml()
        for page_id, skeleton in self.skeletons.items():
            files[f"skeletons/{page_id}.xml"] = skeleton
        return files

    def counts(self) -> dict[str, int]:
        """The §8-style artifact inventory."""
        queries = 0
        for descriptor in self.unit_descriptors:
            if descriptor.query:
                queries += 1
            if descriptor.count_query:
                queries += 1
            queries += len(descriptor.levels)
        for descriptor in self.operation_descriptors:
            queries += len(descriptor.statements)
            if descriptor.user_query:
                queries += 1
        return {
            "site_views": len(self.model.site_views),
            "page_templates": len(self.skeletons),
            "unit_descriptors": len(self.unit_descriptors),
            "page_descriptors": len(self.page_descriptors),
            "operation_descriptors": len(self.operation_descriptors),
            "sql_statements": queries,
            "tables": len(self.mapping.schemas),
        }


def generate_project(model: WebMLModel,
                     validate: bool = True) -> GeneratedProject:
    """Generate all artifacts for ``model``."""
    started = time.perf_counter()
    if validate:
        model.validate()
    mapping = map_to_relational(model.data_model)
    project = GeneratedProject(model=model, mapping=mapping)
    project.ddl = [schema.to_ddl() for schema in mapping.schemas]
    for view in model.site_views:
        landmarks = [(p.id, p.name) for p in view.landmark_pages()]
        for page in view.all_pages():
            project.page_descriptors.append(
                generate_page_descriptor(model, page)
            )
            project.skeletons[page.id] = generate_page_skeleton(
                page, landmarks=landmarks
            )
            for unit in page.units:
                project.unit_descriptors.append(
                    generate_unit_descriptor(unit, mapping)
                )
    for operation in model.all_operations():
        project.operation_descriptors.append(
            generate_operation_descriptor(model, operation, mapping)
        )
    project.controller_config = generate_controller_config(model)
    project.generation_seconds = time.perf_counter() - started
    return project
